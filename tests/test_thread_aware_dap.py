"""Tests for the thread-aware IFRM extension (Section IV-A refinement)."""

from repro.core.dap_sectored import SectoredTargets
from repro.policies.dap import ThreadAwareDapPolicy


def make_policy(**kwargs):
    return ThreadAwareDapPolicy(b_ms=0.4, b_mm=0.15, window=10**9,
                                epoch_cycles=100, **kwargs)


def classify(policy, heavy_core=0, light_core=1):
    """Feed an epoch of reads: heavy core reads 10x more."""
    for i in range(100):
        policy.on_read(now=i, line=i, core_id=heavy_core)
    for i in range(10):
        policy.on_read(now=i, line=i, core_id=light_core)
    policy.on_read(now=200, line=0, core_id=heavy_core)  # epoch rollover
    return policy


def test_reclassification_marks_heavy_core_insensitive():
    policy = classify(make_policy())
    assert 0 in policy._insensitive
    assert 1 not in policy._insensitive


def test_insensitive_core_gets_ifrm_freely():
    policy = classify(make_policy())
    policy.engine.load_targets(SectoredTargets(0, 0, n_ifrm=2, n_sfrm=0))
    assert policy.force_read_miss(now=300, line=5, core_id=0)


def test_sensitive_core_deferred_when_credits_scarce():
    policy = classify(make_policy())
    # Scarce budget: 2 credits out of a 255 max -> below the 25% floor.
    policy.engine.load_targets(SectoredTargets(0, 0, n_ifrm=2, n_sfrm=0))
    assert not policy.force_read_miss(now=300, line=5, core_id=1)
    assert policy.deferred_ifrm == 1
    # The credit was NOT consumed: the insensitive core can still use it.
    assert policy.force_read_miss(now=300, line=5, core_id=0)


def test_sensitive_core_allowed_when_credits_plentiful():
    policy = classify(make_policy())
    policy.engine.load_targets(SectoredTargets(0, 0, n_ifrm=200, n_sfrm=0))
    assert policy.force_read_miss(now=300, line=5, core_id=1)


def test_unknown_core_treated_normally():
    policy = classify(make_policy())
    policy.engine.load_targets(SectoredTargets(0, 0, n_ifrm=2, n_sfrm=0))
    assert policy.force_read_miss(now=300, line=5, core_id=-1)


def test_no_classification_before_first_epoch():
    policy = make_policy()
    policy.engine.load_targets(SectoredTargets(0, 0, n_ifrm=2, n_sfrm=0))
    # Without history every core is treated normally.
    assert policy.force_read_miss(now=1, line=5, core_id=3)


def test_policy_name_and_registration():
    from repro.hierarchy.system import POLICY_NAMES, SystemConfig

    assert "dap-ta" in POLICY_NAMES
    SystemConfig(policy="dap-ta")  # does not raise


def test_full_system_run_with_dap_ta():
    from repro.hierarchy.cache_hierarchy import SramLevels
    from repro.hierarchy.system import SystemConfig, build_system
    from repro.metrics.stats import collect_result
    from repro.workloads.mixes import heterogeneous_mixes

    mix = heterogeneous_mixes()[20]  # a dissimilar-sensitivity mix
    config = SystemConfig(
        policy="dap-ta", msc_capacity_bytes=(4 << 30) // 64,
        tag_cache_entries=2048,
        sram=SramLevels(l1_bytes=16 * 1024, l2_bytes=64 * 1024,
                        l3_bytes=256 * 1024),
    )
    system = build_system(config, mix.traces(refs_per_core=3000, scale=1 / 64))
    for line, dirty in mix.warm_sets(1 / 64):
        system.msc.warm_line(line, dirty)
    system.run()
    result = collect_result(system)
    assert result.cycles > 0
    assert all(ipc > 0 for ipc in result.ipc)
