"""Unit tests for clock-domain conversions."""

import pytest

from repro.engine.clock import ClockDomain, accesses_per_cpu_cycle, bytes_per_cpu_cycle
from repro.errors import ConfigError


def test_device_cycles_convert_and_round_up():
    clock = ClockDomain(device_ghz=1.2, cpu_ghz=4.0)
    # One 1.2 GHz cycle is 3.33 CPU cycles -> rounds to 4.
    assert clock.device_cycles_to_cpu(1) == 4
    # 15 device cycles = 50 CPU cycles exactly.
    assert clock.device_cycles_to_cpu(15) == 50


def test_ns_round_trip():
    clock = ClockDomain(device_ghz=0.8, cpu_ghz=4.0)
    assert clock.ns_to_cpu(10) == 40
    assert clock.cpu_to_ns(40) == pytest.approx(10.0)


def test_invalid_frequencies_rejected():
    with pytest.raises(ConfigError):
        ClockDomain(device_ghz=0)
    with pytest.raises(ConfigError):
        ClockDomain(device_ghz=1.0, cpu_ghz=-1)


def test_bytes_per_cpu_cycle():
    # 38.4 GB/s at 4 GHz = 9.6 bytes/cycle.
    assert bytes_per_cpu_cycle(38.4) == pytest.approx(9.6)


def test_accesses_per_cpu_cycle_matches_paper_constants():
    # 102.4 GB/s of 64 B accesses at 4 GHz = 0.4 accesses/cycle.
    assert accesses_per_cpu_cycle(102.4) == pytest.approx(0.4)
    # 38.4 GB/s = 0.15 accesses/cycle, so K = 0.4/0.15 = 8/3.
    ratio = accesses_per_cpu_cycle(102.4) / accesses_per_cpu_cycle(38.4)
    assert ratio == pytest.approx(8 / 3)


def test_accesses_rejects_bad_inputs():
    with pytest.raises(ConfigError):
        accesses_per_cpu_cycle(-1)
    with pytest.raises(ConfigError):
        accesses_per_cpu_cycle(10, access_bytes=0)
