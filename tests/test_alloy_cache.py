"""Tests for the Alloy cache array and its dirty-bit cache."""

from repro.cache.alloy import TAD_BURST_DEVICE_CYCLES, AlloyCacheArray
from repro.cache.dbc import DirtyBitCache


def make_alloy(sets=64):
    return AlloyCacheArray("alloy", capacity_bytes=sets * 64)


def test_direct_mapped_conflicts():
    arr = make_alloy(sets=4)
    assert arr.fill(0) is None
    evicted = arr.fill(4)  # same set as line 0
    assert evicted is not None and evicted.line == 0
    assert arr.probe(4) and not arr.probe(0)


def test_read_write_stats():
    arr = make_alloy()
    arr.fill(1)
    assert arr.read(1)
    assert not arr.read(2)
    assert arr.write(1)
    assert not arr.write(3)
    assert arr.read_hits == 1 and arr.read_misses == 1
    assert arr.write_hits == 1 and arr.write_misses == 1


def test_write_hit_sets_dirty():
    arr = make_alloy()
    arr.fill(1)
    arr.write(1)
    assert arr.is_dirty(1)
    assert arr.set_is_dirty(arr.set_index(1))


def test_eviction_carries_dirty():
    arr = make_alloy(sets=2)
    arr.fill(0, dirty=True)
    evicted = arr.fill(2)
    assert evicted.line == 0 and evicted.dirty


def test_refill_merges_dirty():
    arr = make_alloy()
    arr.fill(5, dirty=True)
    assert arr.fill(5, dirty=False) is None
    assert arr.is_dirty(5)


def test_invalidate_and_clean():
    arr = make_alloy()
    arr.fill(9, dirty=True)
    arr.clean(9)
    assert not arr.is_dirty(9)
    arr.write(9)
    assert arr.invalidate(9) is True
    assert arr.invalidate(9) is False


def test_tad_burst_constant():
    # 72-byte TAD occupies one extra HBM channel cycle over the 64-byte burst.
    assert TAD_BURST_DEVICE_CYCLES == 3


# ----------------------------------------------------------------------
# Dirty-bit cache
# ----------------------------------------------------------------------

def test_dbc_miss_then_hit():
    dbc = DirtyBitCache(entries=8, assoc=2, group_sets=64)
    assert dbc.lookup(10) is None
    dbc.fill_group(10, dirty_mask=1 << 10)
    assert dbc.lookup(10) is True
    assert dbc.lookup(11) is False


def test_dbc_group_mapping():
    dbc = DirtyBitCache(entries=8, assoc=2, group_sets=64)
    assert dbc.group_of(0) == 0
    assert dbc.group_of(63) == 0
    assert dbc.group_of(64) == 1


def test_dbc_set_dirty_updates_cached_group():
    dbc = DirtyBitCache(entries=8, assoc=2)
    dbc.fill_group(5, dirty_mask=0)
    dbc.set_dirty(5, True)
    assert dbc.lookup(5) is True
    dbc.set_dirty(5, False)
    assert dbc.lookup(5) is False


def test_dbc_set_dirty_ignores_uncached_group():
    dbc = DirtyBitCache(entries=8, assoc=2)
    dbc.set_dirty(7, True)  # group absent: silently ignored
    assert dbc.lookup(7) is None  # still a miss (lookup counts it)


def test_dbc_eviction_drops_bits():
    dbc = DirtyBitCache(entries=2, assoc=1, group_sets=64)
    dbc.fill_group(0, dirty_mask=1)          # group 0 -> set 0
    dbc.fill_group(2 * 64, dirty_mask=0)     # group 2 -> set 0, evicts group 0
    assert dbc.lookup(0) is None
