"""Tests for the chart renderer and workload analysis helpers."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.metrics.charts import bar_chart, chart_result
from repro.workloads.analysis import (
    analyze_profile,
    catalog_expectations,
    sector_budget_ok,
)
from repro.workloads.profiles import get_profile


# ----------------------------------------------------------------------
# Charts
# ----------------------------------------------------------------------

def test_bar_chart_basic():
    text = bar_chart(["a", "bb"], [1.0, 2.0], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 3
    # The larger value gets the longer bar.
    assert lines[2].count("█") > lines[1].count("█")


def test_bar_chart_baseline_marker():
    text = bar_chart(["x"], [0.5], baseline=1.0, width=20)
    assert "|" in text


def test_bar_chart_zero_values():
    text = bar_chart(["x", "y"], [0.0, 1.0])
    assert "0.000" in text


def test_bar_chart_validation():
    with pytest.raises(ConfigError):
        bar_chart(["a"], [1.0, 2.0])
    with pytest.raises(ConfigError):
        bar_chart([], [])
    with pytest.raises(ConfigError):
        bar_chart(["a"], [1.0], width=0)


def test_chart_result_selects_numeric_rows():
    result = ExperimentResult(experiment="demo", headers=["w", "ws"])
    result.add("alpha", 1.1)
    result.add("beta", 0.9)
    result.add("GMEAN", 1.0)
    text = chart_result(result, column=1, baseline=1.0)
    assert "alpha" in text and "GMEAN" in text
    with pytest.raises(ConfigError):
        empty = ExperimentResult(experiment="demo", headers=["w", "ws"])
        empty.add("only-text", "n/a")
        chart_result(empty, column=1)


# ----------------------------------------------------------------------
# Workload analysis
# ----------------------------------------------------------------------

def test_analyze_mcf_expectations():
    exp = analyze_profile(get_profile("mcf"))
    # mpk 320, local 0.86 -> ~44.8 expected MPKI.
    assert exp.expected_mpki == pytest.approx(44.8, rel=0.01)
    # fresh 0.025 of 0.14 non-local -> ~82% hit rate.
    assert exp.expected_hit_rate == pytest.approx(1 - 0.025 / 0.14, rel=0.01)
    assert exp.bandwidth_sensitive


def test_sensitive_mpki_exceeds_insensitive():
    expectations = {e.name: e for e in catalog_expectations()}
    sensitive = [e.expected_mpki for e in expectations.values()
                 if e.bandwidth_sensitive]
    insensitive = [e.expected_mpki for e in expectations.values()
                   if not e.bandwidth_sensitive]
    assert min(sensitive) > max(insensitive)


def test_hit_rates_in_paper_band():
    for exp in catalog_expectations():
        assert 0.6 < exp.expected_hit_rate <= 1.0, exp.name


def test_warm_set_scales_with_scale():
    full = analyze_profile(get_profile("hpcg"), scale=1.0)
    small = analyze_profile(get_profile("hpcg"), scale=1 / 64)
    assert small.warm_lines < full.warm_lines
    assert small.warm_lines * 32 < full.warm_lines  # roughly linear


def test_sector_budget_for_default_platform():
    # 8 copies in a 4 GB cache of 4 KB sectors: every profile must fit —
    # this is the constraint that guided the region sizes.
    verdicts = sector_budget_ok(num_copies=8, capacity_bytes=4 << 30,
                                sector_bytes=4096, assoc=4)
    assert all(verdicts.values()), verdicts


def test_expected_mpki_matches_simulation_roughly():
    """The closed form predicts the simulated MPKI within a small factor
    (the gap comes from cold-start effects in short traces, L3
    interception of hot pages, and store RFOs)."""
    from repro.experiments.common import SMOKE, run_mix, scaled_config
    from repro.workloads.mixes import rate_mix
    from dataclasses import replace

    scale = replace(SMOKE, refs_per_core=10_000)
    exp = analyze_profile(get_profile("sjeng"))
    result = run_mix(rate_mix("sjeng"), scaled_config(scale), scale)
    assert exp.expected_mpki / 4 < result.mean_mpki < exp.expected_mpki * 4
