"""Tests for credit counters and the K approximation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.credits import CreditCounter, approximate_k
from repro.errors import ConfigError


def test_k_approximation_matches_paper():
    # B_MS$ = 102.4, B_MM = 38.4 -> K = 8/3 ~ 11/4 in quarters.
    assert approximate_k(102.4, 38.4) == Fraction(11, 4)


def test_k_exact_when_representable():
    assert approximate_k(102.4, 51.2) == Fraction(2, 1)


def test_k_validation():
    with pytest.raises(ConfigError):
        approximate_k(0, 38.4)
    with pytest.raises(ConfigError):
        approximate_k(102.4, 38.4, denominator=0)


def test_counter_basic_load_take():
    c = CreditCounter(bits=8)
    c.load(3)
    assert c.take() and c.take() and c.take()
    assert not c.take()
    assert c.value == 0


def test_counter_saturates_at_width():
    c = CreditCounter(bits=8)
    c.load(1000)
    assert c.value == 255


def test_counter_floors_at_zero():
    c = CreditCounter(bits=8)
    c.load(-5)
    assert c.value == 0
    assert not c.take()


def test_scaled_counter_implements_k_plus_1_arithmetic():
    # (K+1) * N_WB with K = 11/4: cost per application is 15/4.
    k = Fraction(11, 4)
    c = CreditCounter(bits=8, denominator=k.denominator)
    n_wb = 4
    c.load(n_wb * (k + 1))  # 15 whole units
    applications = 0
    while c.take(k + 1):
        applications += 1
    assert applications == n_wb


def test_nonzero_credit_allows_one_more_application():
    # The paper applies a technique while credits are non-zero, so a
    # fractional remainder still allows a final application.
    k = Fraction(11, 4)
    c = CreditCounter(bits=8, denominator=4)
    c.load(Fraction(15, 4))  # slightly under one application's cost * 2
    assert c.take(k + 1)
    assert not c.take(k + 1)


def test_bool_and_repr():
    c = CreditCounter()
    assert not c
    c.load(1)
    assert c
    assert "CreditCounter" in repr(c)


def test_invalid_construction():
    with pytest.raises(ConfigError):
        CreditCounter(bits=0)
    with pytest.raises(ConfigError):
        CreditCounter(denominator=0)


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_takes_equal_loaded_credit(budget, denom):
    """Property: number of unit takes == min(budget, saturation)."""
    c = CreditCounter(bits=8, denominator=denom)
    c.load(budget)
    takes = 0
    while c.take():
        takes += 1
        assert takes <= 256  # safety
    assert takes == min(budget, 255)


@given(st.floats(min_value=0.1, max_value=100.0),
       st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_k_approximation_error_bounded(b_cache, b_mm):
    """Property: quarter-rounding error of K is at most 1/8."""
    k = approximate_k(b_cache, b_mm)
    assert abs(float(k) - b_cache / b_mm) <= 1 / 8 + 1e-9
