"""Tests for the SBD, SBD-WT and BATMAN baseline policies."""

from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.engine import Simulator
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.mem.configs import ddr4_2400, hbm_102
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind
from repro.policies.batman import BatmanPolicy
from repro.policies.sbd import SbdPolicy


def make_controller(policy, capacity=8 << 20):
    sim = Simulator()
    cache_dev = MemoryDevice(sim, hbm_102())
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("l4", capacity, assoc=4, sector_bytes=4096)
    ctrl = SectoredMscController(sim, cache_dev, mm_dev, array, policy=policy,
                                 tag_cache=None)
    return sim, ctrl


# ----------------------------------------------------------------------
# SBD
# ----------------------------------------------------------------------

def test_sbd_write_through_for_cold_pages():
    policy = SbdPolicy()
    sim, ctrl = make_controller(policy)
    ctrl.write(10, core_id=0)
    sim.run()
    # Page not in the dirty list: write-through keeps the block clean.
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WT_WRITE) == 1
    assert not ctrl.array.is_block_dirty(10)


def test_sbd_dirty_list_pages_skip_write_through():
    policy = SbdPolicy(dirty_threshold=4)
    sim, ctrl = make_controller(policy)
    page_line = 64 * 5  # page 5
    for i in range(6):
        ctrl.write(page_line + i, core_id=0)
    sim.run()
    assert policy.in_dirty_list(page_line)
    wt_before = ctrl.mm_dev.cas_by_kind().get(AccessKind.WT_WRITE, 0)
    ctrl.write(page_line + 10, core_id=0)
    sim.run()
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WT_WRITE, 0) == wt_before
    assert ctrl.array.is_block_dirty(page_line + 10)


def test_sbd_steers_clean_reads_when_mm_is_faster():
    policy = SbdPolicy()
    sim, ctrl = make_controller(policy)
    ctrl.warm_line(100)
    # Pile requests on the cache channel serving line 100 to make it slow.
    for i in range(40):
        ctrl.cache_dev.enqueue(
            __import__("repro.mem.request", fromlist=["Request"]).Request(
                line=100 + i * 4, kind=AccessKind.FILL_WRITE))
    done = []
    ctrl.read(100, core_id=0, callback=lambda t: done.append(t))
    sim.run()
    assert done
    assert policy.steered_reads >= 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1


def test_sbd_cleaning_on_dirty_list_exit():
    policy = SbdPolicy(dirty_threshold=4, epoch_cycles=100, force_cleaning=True)
    sim, ctrl = make_controller(policy)
    page_line = 0
    for i in range(5):
        ctrl.write(page_line + i, core_id=0)
    sim.run()
    assert policy.in_dirty_list(page_line)
    # Decay epochs: 5 -> 2 -> 1 write counts; page exits, gets cleaned.
    for t in range(1, 6):
        sim.at(sim.now + 150, lambda: policy.tick(sim.now))
        sim.run()
    assert not policy.in_dirty_list(page_line)
    assert policy.cleanings >= 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 1
    assert not ctrl.array.is_block_dirty(page_line)


def test_sbd_wt_never_cleans():
    policy = SbdPolicy(dirty_threshold=4, epoch_cycles=100, force_cleaning=False)
    assert policy.name == "sbd-wt"
    sim, ctrl = make_controller(policy)
    for i in range(5):
        ctrl.write(i, core_id=0)
    sim.run()
    for _ in range(5):
        sim.at(sim.now + 150, lambda: policy.tick(sim.now))
        sim.run()
    assert policy.cleanings == 0


# ----------------------------------------------------------------------
# BATMAN
# ----------------------------------------------------------------------

def test_batman_target_hit_rate_from_bandwidths():
    policy = BatmanPolicy()
    sim, ctrl = make_controller(policy)
    assert abs(policy.target_hit_rate - 102.4 / 140.8) < 1e-9


def test_batman_disables_sets_when_hit_rate_above_target():
    policy = BatmanPolicy(epoch_cycles=10, step_fraction=0.5)
    sim, ctrl = make_controller(policy, capacity=8 * 4 * 4096)  # 8 sets
    # Simulate an all-hits epoch.
    ctrl.served_hits = 1000
    ctrl.served_misses = 0
    policy.tick(now=20)
    policy.tick(now=40)  # second epoch acts on the measured rate
    assert policy.disabled_sets >= 1


def test_batman_reenables_when_hit_rate_below_target():
    policy = BatmanPolicy(epoch_cycles=10, step_fraction=0.5)
    sim, ctrl = make_controller(policy, capacity=8 * 4 * 4096)
    ctrl.served_hits = 1000
    ctrl.served_misses = 0
    policy.tick(now=20)
    policy.tick(now=40)
    disabled = policy.disabled_sets
    assert disabled >= 1
    # Now an all-miss epoch: sets come back.
    ctrl.served_misses += 5000
    policy.tick(now=60)
    assert policy.disabled_sets < disabled


def test_batman_flushes_dirty_blocks_of_disabled_sets():
    policy = BatmanPolicy(epoch_cycles=10, step_fraction=1.0,
                          max_disabled_fraction=1.0)
    sim, ctrl = make_controller(policy, capacity=2 * 4 * 4096)  # 2 sets
    ctrl.write(0, core_id=0)  # dirty block in set 0
    sim.run()
    ctrl.served_hits = 1000
    ctrl.served_misses = 0
    policy.tick(now=20)
    policy.tick(now=40)
    sim.run()
    assert policy.disabled_sets >= 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 1


def test_batman_disabled_sets_reject_fills():
    policy = BatmanPolicy(epoch_cycles=10, step_fraction=1.0,
                          max_disabled_fraction=1.0)
    sim, ctrl = make_controller(policy, capacity=2 * 4 * 4096)
    ctrl.served_hits = 1000
    ctrl.served_misses = 0
    policy.tick(now=20)
    policy.tick(now=40)
    assert policy.disabled_sets == 2
    done = []
    ctrl.read(0, core_id=0, callback=lambda t: done.append(t))
    sim.run()
    assert done
    assert ctrl.array.probe(0) is SectorProbe.SECTOR_MISS  # fill rejected
    # A dirty write to a disabled set still reaches main memory.
    ctrl.write(64, core_id=0)
    sim.run()
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 1
