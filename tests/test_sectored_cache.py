"""Tests for the sectored cache array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.errors import ConfigError


def make_array(capacity=4 * 4 * 4096, assoc=4, sector=4096):
    # Default: 4 sets x 4 ways of 4 KB sectors.
    return SectoredCacheArray("test", capacity_bytes=capacity, assoc=assoc,
                              sector_bytes=sector)


def test_geometry():
    arr = make_array()
    assert arr.blocks_per_sector == 64
    assert arr.num_sets == 4
    with pytest.raises(ConfigError):
        SectoredCacheArray("bad", capacity_bytes=1000, assoc=4, sector_bytes=4096)


def test_probe_states():
    arr = make_array()
    line = 100
    assert arr.probe(line) is SectorProbe.SECTOR_MISS
    arr.allocate_sector(line)
    assert arr.probe(line) is SectorProbe.BLOCK_MISS
    arr.fill_block(line)
    assert arr.probe(line) is SectorProbe.HIT


def test_read_counts_hits_and_misses():
    arr = make_array()
    line = 5
    assert arr.read(line) is SectorProbe.SECTOR_MISS
    arr.allocate_sector(line)
    arr.fill_block(line)
    assert arr.read(line) is SectorProbe.HIT
    assert arr.read_hits == 1 and arr.read_misses == 1


def test_write_installs_dirty_block():
    arr = make_array()
    line = 7
    arr.allocate_sector(line)
    assert arr.write(line) is SectorProbe.BLOCK_MISS  # miss, but installs
    assert arr.probe(line) is SectorProbe.HIT
    assert arr.is_block_dirty(line)


def test_fill_block_without_sector_is_dropped():
    arr = make_array()
    assert not arr.fill_block(42)
    assert arr.probe(42) is SectorProbe.SECTOR_MISS


def test_sector_eviction_reports_dirty_lines():
    arr = make_array(capacity=2 * 1 * 4096, assoc=1, sector=4096)  # 2 sets, 1 way
    base = 0  # sector 0, set 0
    arr.allocate_sector(base)
    arr.write(base + 3)
    arr.write(base + 10)
    arr.fill_block(base + 20)  # clean block
    # Sector 2 maps to set 0 as well (2 % 2 == 0).
    evicted = arr.allocate_sector(2 * 64)
    assert evicted is not None
    assert evicted.sector_id == 0
    assert sorted(evicted.dirty_lines) == [3, 10]
    assert evicted.valid_blocks == 3


def test_same_sector_lines_share_residency():
    arr = make_array()
    arr.allocate_sector(0)
    arr.fill_block(0)
    arr.fill_block(1)
    assert arr.probe(1) is SectorProbe.HIT
    assert arr.probe(63) is SectorProbe.BLOCK_MISS
    assert arr.probe(64) is SectorProbe.SECTOR_MISS  # next sector


def test_invalidate_block():
    arr = make_array()
    arr.allocate_sector(0)
    arr.write(0)
    assert arr.invalidate_block(0) is True
    assert arr.probe(0) is SectorProbe.BLOCK_MISS
    assert arr.invalidate_block(0) is False


def test_clean_block():
    arr = make_array()
    arr.allocate_sector(0)
    arr.write(0)
    arr.clean_block(0)
    assert not arr.is_block_dirty(0)
    assert arr.probe(0) is SectorProbe.HIT


def test_disable_set_flushes_and_rejects():
    arr = make_array(capacity=2 * 1 * 4096, assoc=1, sector=4096)
    arr.allocate_sector(0)
    arr.write(5)
    dirty = arr.disable_set(0)
    assert dirty == [5]
    assert arr.probe(0) is SectorProbe.SECTOR_MISS
    assert arr.allocate_sector(0) is None
    assert arr.probe(0) is SectorProbe.SECTOR_MISS
    arr.enable_set(0)
    arr.allocate_sector(0)
    assert arr.probe(0) is SectorProbe.BLOCK_MISS


def test_hit_rate_combines_reads_and_writes():
    arr = make_array()
    arr.allocate_sector(0)
    arr.fill_block(0)
    arr.read(0)      # hit
    arr.read(999)    # sector miss
    arr.write(1)     # block miss
    assert arr.hit_rate() == pytest.approx(1 / 3)


def test_touched_mask_tracks_footprint():
    arr = make_array(capacity=2 * 1 * 4096, assoc=1, sector=4096)
    arr.allocate_sector(0)
    arr.fill_block(0)
    arr.fill_block(9)
    arr.read(0)
    arr.read(9)
    evicted = arr.allocate_sector(2 * 64)
    assert evicted.touched_mask == (1 << 0) | (1 << 9)


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.sampled_from(["read", "write", "alloc", "fill", "inval"]),
                  st.integers(min_value=0, max_value=511)),
        max_size=300,
    )
)
@settings(max_examples=40, deadline=None)
def test_dirty_blocks_are_always_valid(operations):
    arr = SectoredCacheArray("prop", capacity_bytes=4 * 2 * 512, assoc=2,
                             sector_bytes=512)
    touched_sectors = set()
    for op, line in operations:
        if op == "read":
            arr.read(line)
        elif op == "write":
            if arr.probe(line) is not SectorProbe.SECTOR_MISS:
                arr.write(line)
        elif op == "alloc":
            arr.allocate_sector(line)
            touched_sectors.add(arr.sector_of(line))
        elif op == "fill":
            arr.fill_block(line)
        else:
            arr.invalidate_block(line)
        # Invariant: dirty bits are a subset of valid bits in every sector.
        for ways in arr._sets.values():
            for sector in ways.values():
                assert sector.dirty & ~sector.valid == 0
        assert arr.resident_sectors() <= arr.num_sets * arr.assoc
