"""Tests for the SRAM tag cache."""

from repro.cache.tag_cache import TagCache


def test_miss_then_hit():
    tc = TagCache(entries=8, assoc=2)
    assert not tc.lookup(1)
    tc.fill(1)
    assert tc.lookup(1)
    assert tc.misses == 1 and tc.hits == 1


def test_dirty_metadata_eviction_reports_writeback():
    tc = TagCache(entries=2, assoc=1)  # 2 sets of 1 way
    tc.fill(0)
    tc.mark_dirty(0)
    # Sector 2 maps to the same set as 0.
    evicted_dirty = tc.fill(2)
    assert evicted_dirty is True


def test_clean_metadata_eviction_needs_no_writeback():
    tc = TagCache(entries=2, assoc=1)
    tc.fill(0)
    assert tc.fill(2) is False


def test_invalidate():
    tc = TagCache(entries=8, assoc=2)
    tc.fill(5)
    tc.mark_dirty(5)
    assert tc.invalidate(5) is True
    assert tc.invalidate(5) is None


def test_miss_rate():
    tc = TagCache(entries=8, assoc=2)
    tc.lookup(1)
    tc.fill(1)
    tc.lookup(1)
    assert tc.miss_rate() == 0.5


def test_default_geometry():
    tc = TagCache()
    assert tc.lookup_cycles == 5
    # 32K entries, 4-way: thrash more than 32K distinct sectors and the
    # cache must keep functioning.
    for sector in range(40_000):
        if not tc.lookup(sector):
            tc.fill(sector)
    assert tc.hit_rate() < 0.1
