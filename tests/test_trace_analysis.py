"""The offline trace analyzer: per-window fraction math against
hand-built traces, partition gap vs the bandwidth-model oracle,
truncated-trace tolerance, downsampling, and report rendering."""

import json
from dataclasses import replace

import pytest

from repro.core.bandwidth_model import (
    delivered_bandwidth,
    max_delivered_bandwidth,
    optimal_fractions,
)
from repro.errors import ConfigError
from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.obs.analysis import (
    analyze_trace,
    bandwidths_from_manifest,
    render_csv,
    render_markdown,
    sparkline,
)
from repro.obs.telemetry import TelemetryConfig
from repro.obs.trace import TraceWriter, iter_trace, read_trace, trace_paths
from repro.workloads.mixes import rate_mix

TINY = replace(SMOKE, name="smoke", refs_per_core=3_000)

#: The paper's default platform: 102.4 GB/s HBM cache, 38.4 GB/s DDR4.
BW = {"cache": 102.4, "mm": 38.4}


def write_synthetic_trace(path, samples, probes=None, interval=1000,
                          decisions=()):
    """A hand-built trace: meta, then (cycle, values) samples, then
    decision records."""
    probes = probes or sorted({k for _, values in samples for k in values})
    with TraceWriter(path) as writer:
        writer.write_meta("synthetic", list(probes), interval)
        for cycle, values in samples:
            writer.write_sample(cycle, values)
        for record in decisions:
            writer.write_decision(record)
    return path


# ----------------------------------------------------------------------
# Per-window fraction math on hand-built traces
# ----------------------------------------------------------------------

def test_measured_fractions_per_window(tmp_path):
    path = write_synthetic_trace(tmp_path / "a.trace.jsonl", [
        (1000, {"cache.gbps": 75.0, "mm.gbps": 25.0}),
        (2000, {"cache.gbps": 40.0, "mm.gbps": 60.0}),
        (3000, {"cache.gbps": 0.0, "mm.gbps": 0.0}),   # idle window
    ])
    analysis = analyze_trace(path, bandwidths=BW)
    assert analysis.sources == ("cache", "mm")
    assert len(analysis.windows) == 3
    assert analysis.windows[0].fractions == {"cache": 0.75, "mm": 0.25}
    assert analysis.windows[1].fractions == {"cache": 0.40, "mm": 0.60}
    assert analysis.windows[2].fractions is None
    assert analysis.windows[2].partition_gap is None
    # Traffic-weighted overall shares: (75+40)/200 and (25+60)/200.
    measured = analysis.measured_fractions()
    assert measured["cache"] == pytest.approx(115 / 200)
    assert measured["mm"] == pytest.approx(85 / 200)


def test_optimal_matches_bandwidth_model_exactly(tmp_path):
    path = write_synthetic_trace(tmp_path / "a.trace.jsonl", [
        (1000, {"cache.gbps": 10.0, "mm.gbps": 10.0}),
    ])
    analysis = analyze_trace(path, bandwidths=BW)
    expected = optimal_fractions([BW["cache"], BW["mm"]])
    assert [analysis.optimal["cache"], analysis.optimal["mm"]] == expected


def test_partition_gap_and_loss_against_oracle(tmp_path):
    # A window exactly at the optimum: zero gap, zero loss.
    opt = optimal_fractions([BW["cache"], BW["mm"]])
    path = write_synthetic_trace(tmp_path / "opt.trace.jsonl", [
        (1000, {"cache.gbps": 100 * opt[0], "mm.gbps": 100 * opt[1]}),
    ])
    analysis = analyze_trace(path, bandwidths=BW)
    window = analysis.windows[0]
    assert window.partition_gap == pytest.approx(0.0, abs=1e-12)
    assert window.loss_gbps == pytest.approx(0.0, abs=1e-9)

    # A skewed window: gap is the TV distance, loss matches Eq. 2.
    path = write_synthetic_trace(tmp_path / "skew.trace.jsonl", [
        (1000, {"cache.gbps": 90.0, "mm.gbps": 10.0}),
    ])
    window = analyze_trace(path, bandwidths=BW).windows[0]
    assert window.fractions == {"cache": 0.9, "mm": 0.1}
    assert window.partition_gap == pytest.approx(abs(0.9 - opt[0]))
    oracle = (max_delivered_bandwidth([BW["cache"], BW["mm"]])
              - delivered_bandwidth([BW["cache"], BW["mm"]], [0.9, 0.1]))
    assert window.loss_gbps == pytest.approx(oracle)


def test_grant_deltas_and_decision_accounting(tmp_path):
    probes = ["cache.gbps", "mm.gbps", "dap.granted.fwb"]
    path = write_synthetic_trace(
        tmp_path / "d.trace.jsonl",
        [
            (1000, {"cache.gbps": 1.0, "mm.gbps": 1.0,
                    "dap.granted.fwb": 5}),
            (2000, {"cache.gbps": 1.0, "mm.gbps": 1.0,
                    "dap.granted.fwb": 12}),
        ],
        probes=probes,
        decisions=[
            {"cycle": 10, "line": 1, "technique": "fwb", "granted": True,
             "credits": {"fwb": 4.0}},
            {"cycle": 20, "line": 2, "technique": "fwb", "granted": False,
             "credits": {"fwb": 0.0}},
            {"cycle": 30, "line": 3, "technique": "wb", "granted": True,
             "credits": {"wb": 2.0}},
        ],
    )
    analysis = analyze_trace(path, bandwidths=BW)
    assert analysis.windows[0].grants == {"fwb": 5}
    assert analysis.windows[1].grants == {"fwb": 7}
    assert analysis.decisions["fwb"] == {"granted": 1, "denied": 1}
    assert analysis.decisions["wb"] == {"granted": 1, "denied": 0}
    assert analysis.grant_rates() == {"fwb": 0.5, "wb": 1.0}
    assert analysis.credits["fwb"]["mean"] == pytest.approx(2.0)
    assert analysis.credits["fwb"]["exhausted_frac"] == pytest.approx(0.5)


def test_missing_bandwidth_source_rejected(tmp_path):
    path = write_synthetic_trace(tmp_path / "a.trace.jsonl", [
        (1000, {"cache.gbps": 1.0, "mm.gbps": 1.0}),
    ])
    with pytest.raises(ConfigError):
        analyze_trace(path, bandwidths={"cache": 102.4})


def test_analysis_without_bandwidths_still_measures(tmp_path):
    path = write_synthetic_trace(tmp_path / "a.trace.jsonl", [
        (1000, {"cache.gbps": 30.0, "mm.gbps": 10.0}),
    ])
    analysis = analyze_trace(path)  # no manifest, no bandwidths
    assert analysis.optimal is None
    assert analysis.windows[0].fractions == {"cache": 0.75, "mm": 0.25}
    assert analysis.windows[0].partition_gap is None


# ----------------------------------------------------------------------
# Constant-memory downsampling
# ----------------------------------------------------------------------

def test_windows_downsample_past_bound(tmp_path):
    samples = [(1000 * (i + 1), {"cache.gbps": float(i % 7),
                                 "mm.gbps": 1.0}) for i in range(100)]
    path = write_synthetic_trace(tmp_path / "long.trace.jsonl", samples)
    analysis = analyze_trace(path, bandwidths=BW, max_windows=16)
    assert analysis.samples == 100
    assert len(analysis.windows) <= 17
    # Weights cover every raw sample exactly once.
    assert sum(w.weight for w in analysis.windows) == 100
    # Cycles stay monotonic after merging.
    cycles = [w.cycle for w in analysis.windows]
    assert cycles == sorted(cycles)


# ----------------------------------------------------------------------
# Truncated / corrupt traces
# ----------------------------------------------------------------------

def test_truncated_final_line_tolerated(tmp_path):
    path = write_synthetic_trace(tmp_path / "t.trace.jsonl", [
        (1000, {"cache.gbps": 1.0, "mm.gbps": 1.0}),
        (2000, {"cache.gbps": 2.0, "mm.gbps": 2.0}),
    ])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t": "sample", "cycle": 3000, "values": {"cache.g')
    records = read_trace(path)
    assert [r["t"] for r in records] == ["meta", "sample", "sample"]
    assert len(list(iter_trace(path, kind="sample"))) == 2
    analysis = analyze_trace(path, bandwidths=BW)
    assert analysis.samples == 2


def test_mid_file_corruption_still_raises(tmp_path):
    path = tmp_path / "bad.trace.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"t": "meta", "probes": [], "probe_interval": 1}\n')
        handle.write("{not json at all\n")
        handle.write('{"t": "sample", "cycle": 1, "values": {}}\n')
    with pytest.raises(json.JSONDecodeError):
        read_trace(path)


def test_torn_final_line_is_counted_not_silent(tmp_path):
    from repro.obs.metrics import REGISTRY

    path = write_synthetic_trace(tmp_path / "t.trace.jsonl", [
        (1000, {"cache.gbps": 1.0, "mm.gbps": 1.0}),
        (2000, {"cache.gbps": 2.0, "mm.gbps": 2.0}),
    ])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t": "sample", "cycle": 3000, "values": {"torn')

    # iter_trace surfaces the drop via its stats dict and the registry.
    counter_before = REGISTRY.value("repro_trace_torn_lines_total")
    stats: dict = {}
    assert len(list(iter_trace(path, stats=stats))) == 3
    assert stats["torn_lines"] == 1
    assert REGISTRY.value("repro_trace_torn_lines_total") \
        == counter_before + 1

    # analyze_trace carries it into the report's metrics and markdown.
    analysis = analyze_trace(path, bandwidths=BW)
    assert analysis.torn_lines == 1
    assert analysis.metrics()["torn_lines"] == 1.0
    assert "torn final line" in render_markdown(analysis)

    # An intact trace reports zero and renders no warning.
    clean = analyze_trace(write_synthetic_trace(
        tmp_path / "clean.trace.jsonl",
        [(1000, {"cache.gbps": 1.0, "mm.gbps": 1.0})]), bandwidths=BW)
    assert clean.torn_lines == 0
    assert "torn" not in render_markdown(clean)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def test_sparkline_shape_and_gaps():
    assert sparkline([]) == ""
    assert sparkline([1.0, None, 3.0]) == "▁ █"
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
    long = sparkline(list(range(1000)), width=40)
    assert len(long) == 40
    assert long[0] == "▁" and long[-1] == "█"


def test_render_markdown_reports_optimum(tmp_path):
    path = write_synthetic_trace(tmp_path / "a.trace.jsonl", [
        (1000, {"cache.gbps": 75.0, "mm.gbps": 25.0}),
        (2000, {"cache.gbps": 60.0, "mm.gbps": 40.0}),
    ])
    text = render_markdown(analyze_trace(path, bandwidths=BW))
    opt = optimal_fractions([102.4, 38.4])
    assert f"{opt[0]:.4f}" in text      # optimal cache fraction
    assert f"{opt[1]:.4f}" in text      # optimal mm fraction
    assert "mean partition gap" in text
    assert "frac.cache" in text


def test_render_csv_has_one_row_per_window(tmp_path):
    path = write_synthetic_trace(tmp_path / "a.trace.jsonl", [
        (1000, {"cache.gbps": 75.0, "mm.gbps": 25.0}),
        (2000, {"cache.gbps": 60.0, "mm.gbps": 40.0}),
    ])
    text = render_csv(analyze_trace(path, bandwidths=BW))
    lines = text.strip().splitlines()
    assert len(lines) == 3  # header + 2 windows
    header = lines[0].split(",")
    assert "fraction.cache" in header and "optimal.mm" in header
    assert "partition_gap" in header and "loss_gbps" in header


# ----------------------------------------------------------------------
# Against a real instrumented run
# ----------------------------------------------------------------------

def test_analyze_real_traced_run(tmp_path):
    config = scaled_config(TINY, policy="dap")
    telemetry = TelemetryConfig(probe_interval=2_000,
                                trace_dir=str(tmp_path))
    result = run_mix(rate_mix("mcf"), config, TINY, telemetry=telemetry,
                     label="mcf/dap")
    trace_path, _ = trace_paths(tmp_path, "mcf/dap")
    analysis = analyze_trace(trace_path)

    # Bandwidths reconstructed from the manifest match the platform.
    assert analysis.bandwidths["cache"] == pytest.approx(102.4)
    assert analysis.bandwidths["mm"] == pytest.approx(38.4)
    expected = optimal_fractions([102.4, 38.4])
    assert analysis.optimal["cache"] == expected[0]
    assert analysis.optimal["mm"] == expected[1]

    assert analysis.samples > 0 and analysis.windows
    assert analysis.decision_records > 0
    measured = analysis.measured_fractions()
    assert measured and 0 < measured["mm"] < 1

    # The analyzer's overall fractions agree with the run's own
    # device-level accounting (RunResult extras, same CAS underlying).
    assert measured["mm"] == pytest.approx(
        result.extras["mm_access_fraction"], abs=0.05)

    metrics = analysis.metrics()
    assert metrics["cycles"] == result.cycles
    assert "mean_partition_gap" in metrics
    assert metrics["mean_delivered_gbps"] > 0


def test_bandwidths_from_manifest_edram():
    manifest = {"config": {
        "msc_kind": "edram",
        "mm_dram": {
            "name": "DDR4-2400", "num_channels": 2, "device_ghz": 1.2,
            "banks_per_channel": 16, "row_bytes": 2048,
            "timing": {"t_cas": 15, "t_rcd": 15, "t_rp": 15, "t_ras": 39,
                       "burst": 4, "turnaround": 8, "extra_io": 10,
                       "t_refi": 0, "t_rfc": 0},
        },
    }}
    bw = bandwidths_from_manifest(manifest)
    assert bw["cache"] == pytest.approx(51.2)
    assert bw["cache_wr"] == pytest.approx(51.2)
    assert bw["mm"] == pytest.approx(38.4)
