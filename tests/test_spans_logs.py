"""W3C traceparent plumbing, span emission, and structured logging."""

import io
import json
import logging
import threading

import pytest

from repro.obs.logs import configure_logging, get_logger
from repro.obs.spans import (
    child_traceparent,
    current_traceparent,
    emit_span,
    make_traceparent,
    parse_traceparent,
    span,
    trace_id_of,
    use_span_sink,
    use_traceparent,
)

# ----------------------------------------------------------------------
# traceparent shape
# ----------------------------------------------------------------------

def test_make_traceparent_is_valid_and_unique():
    first, second = make_traceparent(), make_traceparent()
    assert first != second
    parsed = parse_traceparent(first)
    assert parsed["version"] == "00"
    assert len(parsed["trace_id"]) == 32
    assert len(parsed["span_id"]) == 16
    assert parsed["flags"] == "01"


def test_parse_rejects_malformed_and_forbidden_values():
    assert parse_traceparent(None) is None
    assert parse_traceparent("") is None
    assert parse_traceparent("not-a-traceparent") is None
    assert parse_traceparent("00-" + "0" * 32 + "-" + "a" * 16 + "-01") is None
    assert parse_traceparent("00-" + "a" * 32 + "-" + "0" * 16 + "-01") is None
    assert parse_traceparent("ff-" + "a" * 32 + "-" + "b" * 16 + "-01") is None
    # Uppercase hex is tolerated (normalized to lowercase).
    upper = "00-" + "A" * 32 + "-" + "B" * 16 + "-01"
    assert parse_traceparent(upper)["trace_id"] == "a" * 32


def test_child_keeps_trace_id_changes_span_id():
    parent = make_traceparent()
    child = child_traceparent(parent)
    assert trace_id_of(child) == trace_id_of(parent)
    assert parse_traceparent(child)["span_id"] != \
        parse_traceparent(parent)["span_id"]
    # A malformed parent degrades to a fresh trace, never an error.
    assert parse_traceparent(child_traceparent("garbage")) is not None


# ----------------------------------------------------------------------
# context propagation
# ----------------------------------------------------------------------

def test_use_traceparent_scopes_context():
    assert current_traceparent() is None
    tp = make_traceparent()
    with use_traceparent(tp):
        assert current_traceparent() == tp
        with use_traceparent(None):
            assert current_traceparent() is None
        assert current_traceparent() == tp
    assert current_traceparent() is None


def test_context_is_per_thread():
    tp = make_traceparent()
    seen = {}

    def other():
        seen["other"] = current_traceparent()

    with use_traceparent(tp):
        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
    assert seen["other"] is None  # context does not leak across threads


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------

def test_emit_span_is_noop_without_context_or_sinks():
    assert emit_span("cell/x", 0.5) is None


def test_emit_span_reaches_sinks_with_child_traceparent():
    got = []
    tp = make_traceparent()
    with use_traceparent(tp), use_span_sink(got.append):
        finished = emit_span("cell/mcf", 1.5, status="ok")
    assert finished is not None
    [seen] = got
    assert seen.name == "cell/mcf"
    assert trace_id_of(seen.traceparent) == trace_id_of(tp)
    assert seen.attrs == {"status": "ok"}
    data = seen.to_dict()
    assert data["wall_seconds"] == 1.5
    assert data["trace_id"] == trace_id_of(tp)


def test_span_sink_errors_never_break_the_caller():
    def bad_sink(_span):
        raise RuntimeError("sink exploded")

    good = []
    with use_span_sink(bad_sink), use_span_sink(good.append):
        emit_span("cell/x", 0.1)
    assert len(good) == 1


def test_span_contextmanager_times_and_emits():
    got = []
    with use_span_sink(got.append):
        with span("phase/solve", kind="test") as live:
            pass
    assert got[0].name == "phase/solve"
    assert got[0].wall_seconds >= 0
    assert live.wall_seconds == got[0].wall_seconds


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------

def test_json_logging_carries_traceparent_and_extras():
    stream = io.StringIO()
    configure_logging(level="info", json_mode=True, stream=stream)
    try:
        tp = make_traceparent()
        with use_traceparent(tp):
            get_logger("service.worker").info(
                "job %s claimed", "abc123", extra={"job_id": "abc123"})
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "job abc123 claimed"
        assert record["level"] == "info"
        assert record["logger"] == "repro.service.worker"
        assert record["traceparent"] == tp
        assert record["job_id"] == "abc123"
    finally:
        logging.getLogger("repro").handlers.clear()


def test_text_logging_abbreviates_trace_id():
    stream = io.StringIO()
    configure_logging(level="debug", json_mode=False, stream=stream)
    try:
        tp = make_traceparent()
        with use_traceparent(tp):
            get_logger("repro.test").debug("hello")
        line = stream.getvalue()
        assert "hello" in line
        assert f"[trace {trace_id_of(tp)[:12]}]" in line
    finally:
        logging.getLogger("repro").handlers.clear()


def test_configure_logging_is_idempotent():
    stream = io.StringIO()
    try:
        configure_logging(level="info", stream=stream)
        configure_logging(level="info", stream=stream)
        handlers = [h for h in logging.getLogger("repro").handlers
                    if getattr(h, "_repro_obs_handler", False)]
        assert len(handlers) == 1
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1
    finally:
        logging.getLogger("repro").handlers.clear()


def test_unconfigured_logging_is_silent(capsys):
    logging.getLogger("repro").handlers.clear()
    get_logger("quiet").info("nothing to see")
    captured = capsys.readouterr()
    assert "nothing to see" not in captured.err


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure_logging(level="loud")
