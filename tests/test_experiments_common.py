"""Tests for the experiment harness plumbing."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.experiments.common import (
    PAPER,
    SMALL,
    SMOKE,
    ExperimentResult,
    get_scale,
    scaled_config,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.metrics.speedup import (
    geomean,
    normalized_weighted_speedup,
    weighted_speedup,
)


def test_scales_are_consistent():
    for scale in (SMOKE, SMALL, PAPER):
        assert scale.footprint_scale == pytest.approx(1 / scale.capacity_divisor)
        assert scale.l3_bytes > scale.l2_bytes > 0
    assert PAPER.msc_capacity(4 << 30) == 4 << 30
    assert SMOKE.msc_capacity(4 << 30) == (4 << 30) // 64


def test_get_scale_by_name_and_env(monkeypatch):
    assert get_scale("paper") is PAPER
    monkeypatch.setenv("REPRO_SCALE", "small")
    assert get_scale() is SMALL
    with pytest.raises(ConfigError):
        get_scale("huge")


def test_scaled_config_shrinks_metadata_structures():
    config = scaled_config(SMOKE)
    assert config.msc_capacity_bytes == (4 << 30) // 64
    assert config.tag_cache_entries < 32 * 1024
    assert config.sram.l3_bytes == SMOKE.l3_bytes
    paper_cfg = scaled_config(PAPER)
    assert paper_cfg.tag_cache_entries == 32 * 1024


def test_experiment_result_rendering():
    result = ExperimentResult(experiment="demo", headers=["name", "value"])
    result.add("alpha", 1.2345)
    result.add("beta", 2)
    text = result.render()
    assert "demo" in text
    assert "1.234" in text or "1.235" in text
    assert result.column(0) == ["alpha", "beta"]


def test_runner_registry_covers_all_artifacts():
    expected = {"fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
                "table1", "fig09", "fig10", "fig11", "fig12", "fig13",
                "fig14", "fig15", "ablation", "flat", "baselines", "prefetch"}
    assert set(EXPERIMENTS) == expected


def test_experiment_result_csv_roundtrip(tmp_path):
    result = ExperimentResult(experiment="demo", headers=["name", "value"])
    result.add("alpha", 1.25)
    path = result.to_csv(str(tmp_path), "demo")
    content = open(path).read().strip().splitlines()
    assert content[0] == "name,value"
    assert content[1] == "alpha,1.25"


def test_runner_rejects_unknown_experiment():
    with pytest.raises(ReproError):
        run_experiment("fig99")


# ----------------------------------------------------------------------
# Speedup metrics
# ----------------------------------------------------------------------

def test_weighted_speedup():
    assert weighted_speedup([1.0, 2.0], [1.0, 1.0]) == 3.0
    assert weighted_speedup([0.5, 0.5], [1.0, 0.5]) == pytest.approx(1.5)
    with pytest.raises(ConfigError):
        weighted_speedup([1.0], [1.0, 2.0])
    with pytest.raises(ConfigError):
        weighted_speedup([1.0], [0.0])


def test_normalized_weighted_speedup():
    assert normalized_weighted_speedup([2.0, 2.0], [1.0, 1.0]) == 2.0
    # With alone references the ratio weights by per-thread slowdown.
    value = normalized_weighted_speedup([1.0, 4.0], [1.0, 2.0],
                                        alone_ipcs=[1.0, 4.0])
    assert value == pytest.approx((1 + 1) / (1 + 0.5))


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([2.0]) == 2.0
