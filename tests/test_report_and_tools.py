"""Tests for the run-report, trace-file, and planner utilities."""

from fractions import Fraction

import pytest

from repro.core.planner import PartitionPlan, plan
from repro.errors import ConfigError, WorkloadError
from repro.hierarchy.cache_hierarchy import SramLevels
from repro.hierarchy.system import SystemConfig, build_system
from repro.metrics.report import run_report
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import generate_trace
from repro.workloads.tracefile import read_trace, trace_summary, write_trace


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------

def test_plan_default_platform():
    p = plan(102.4, 38.4)
    assert p.k_exact == pytest.approx(8 / 3)
    assert p.k_hardware == Fraction(11, 4)
    assert p.optimal_mm_fraction == pytest.approx(0.2727, abs=1e-3)
    assert p.max_bandwidth_gbps == pytest.approx(140.8)
    # B_MS$ * W = 0.4 * 0.75 * 64 = 19.2 accesses per window.
    assert p.cache_accesses_per_window == pytest.approx(19.2)
    assert p.mm_accesses_per_window == pytest.approx(7.2)
    assert p.breakeven_hit_rate == pytest.approx(0.625)


def test_plan_describe_mentions_key_constants():
    text = plan(102.4, 38.4).describe()
    assert "11/4" in text
    assert "140.8" in text


def test_plan_validation():
    with pytest.raises(ConfigError):
        plan(0, 38.4)
    with pytest.raises(ConfigError):
        PartitionPlan(b_cache_gbps=100, b_mm_gbps=40, window=0,
                      efficiency=0.75, cpu_ghz=4.0)
    with pytest.raises(ConfigError):
        plan(100, 40, efficiency=2.0)


def test_planner_cli(capsys):
    from repro.core.planner import main

    assert main(["102.4", "38.4"]) == 0
    out = capsys.readouterr().out
    assert "optimal split" in out


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------

def test_trace_roundtrip(tmp_path):
    profile = get_profile("mcf")
    entries = list(generate_trace(profile, num_refs=500, scale=1 / 64))
    path = str(tmp_path / "mcf.trace")
    assert write_trace(path, entries, header="mcf sample") == 500
    back = list(read_trace(path))
    assert back == entries


def test_trace_roundtrip_gzip(tmp_path):
    entries = [(3, False, 100), (0, True, 0xABCDEF)]
    path = str(tmp_path / "t.trace.gz")
    write_trace(path, entries)
    assert list(read_trace(path)) == entries


def test_trace_summary(tmp_path):
    entries = [(9, False, 1), (9, True, 2), (9, False, 1)]
    path = str(tmp_path / "s.trace")
    write_trace(path, entries)
    summary = trace_summary(path)
    assert summary["refs"] == 3
    assert summary["writes"] == 1
    assert summary["footprint_lines"] == 2
    assert summary["instructions"] == 30
    assert summary["mem_per_kilo"] == pytest.approx(100.0)


def test_trace_read_errors(tmp_path):
    with pytest.raises(WorkloadError):
        list(read_trace(str(tmp_path / "missing.trace")))
    bad = tmp_path / "bad.trace"
    bad.write_text("1 X ff\n")
    with pytest.raises(WorkloadError):
        list(read_trace(str(bad)))
    bad.write_text("-1 R ff\n")
    with pytest.raises(WorkloadError):
        list(read_trace(str(bad)))
    bad.write_text("zz R ff\n")
    with pytest.raises(WorkloadError):
        list(read_trace(str(bad)))


def test_trace_comments_and_blanks_skipped(tmp_path):
    path = tmp_path / "c.trace"
    path.write_text("# header\n\n5 R a\n")
    assert list(read_trace(str(path))) == [(5, False, 10)]


def test_loaded_trace_drives_a_system(tmp_path):
    profile = get_profile("gcc.expr")
    path = str(tmp_path / "w.trace")
    write_trace(path, generate_trace(profile, num_refs=800, scale=1 / 64))
    config = SystemConfig(
        num_cores=1, msc_capacity_bytes=(4 << 30) // 64,
        tag_cache_entries=2048,
        sram=SramLevels(l1_bytes=16 * 1024, l2_bytes=64 * 1024,
                        l3_bytes=256 * 1024),
    )
    system = build_system(config, [read_trace(path)])
    system.run()
    assert system.cores[0].done
    assert system.cores[0].ipc > 0


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------

def test_run_report_sections():
    mix = rate_mix("mcf", ways=2)
    config = SystemConfig(
        num_cores=2, policy="dap", msc_capacity_bytes=(4 << 30) // 64,
        tag_cache_entries=2048,
        sram=SramLevels(l1_bytes=16 * 1024, l2_bytes=64 * 1024,
                        l3_bytes=256 * 1024),
    )
    system = build_system(config, mix.traces(refs_per_core=2500, scale=1 / 64))
    for line, dirty in mix.warm_sets(1 / 64):
        system.msc.warm_line(line, dirty)
    system.run()
    report = run_report(system)
    assert "run report" in report
    assert "cores:" in report
    assert "memory-side cache:" in report
    assert "main-memory" in report
    assert "dap decisions" in report
    assert "demand_read" in report
