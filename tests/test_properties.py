"""Cross-cutting property-based tests on the simulation substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Simulator
from repro.engine.clock import ClockDomain
from repro.errors import ReproError, ConfigError, SimulationError, WorkloadError
from repro.mem.channel import DramChannel
from repro.mem.request import AccessKind, Request
from repro.mem.timing import DramTiming


# ----------------------------------------------------------------------
# Error hierarchy
# ----------------------------------------------------------------------

def test_error_hierarchy():
    for exc in (ConfigError, SimulationError, WorkloadError):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


# ----------------------------------------------------------------------
# Event queue properties
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_dispatch_times_are_monotonic(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.at(t, lambda now=t: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(times)
    assert sim.now == max(times)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=100),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_run_until_never_dispatches_late_events(times, bound):
    sim = Simulator()
    seen = []
    for t in times:
        sim.at(t, lambda now=t: seen.append(now))
    sim.run(until=bound)
    assert all(t <= bound for t in seen)
    assert sorted(seen) == sorted(t for t in times if t <= bound)


# ----------------------------------------------------------------------
# Channel conservation properties
# ----------------------------------------------------------------------

@st.composite
def request_batches(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    lines = draw(st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=n, max_size=n))
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return list(zip(lines, writes))


@given(request_batches())
@settings(max_examples=40, deadline=None)
def test_every_request_completes_exactly_once(batch):
    sim = Simulator()
    clock = ClockDomain(device_ghz=0.8, cpu_ghz=4.0)
    timing = DramTiming(t_cas=10, t_rcd=10, t_rp=10, t_ras=26, burst=2)
    chan = DramChannel(sim, clock, timing, num_banks=16, row_bytes=2048)
    completions: dict[int, int] = {}

    def done(req, t):
        completions[req.req_id] = completions.get(req.req_id, 0) + 1

    reqs = []
    for line, is_write in batch:
        kind = AccessKind.WRITEBACK if is_write else AccessKind.DEMAND_READ
        req = Request(line=line, kind=kind, on_complete=done)
        reqs.append(req)
        chan.enqueue(req)
    sim.run()
    assert len(completions) == len(batch)
    assert all(count == 1 for count in completions.values())
    # Stats conserve: CAS count equals total requests; queues drained.
    assert chan.stats.total_cas == len(batch)
    assert chan.read_queue_len == 0 and chan.write_queue_len == 0
    assert chan.stats.reads_done + chan.stats.writes_done == len(batch)


@given(request_batches())
@settings(max_examples=30, deadline=None)
def test_finish_times_respect_issue_order_per_line(batch):
    """Two requests to the same line never complete at the same cycle on
    one channel (the bus serializes), and every finish is after issue."""
    sim = Simulator()
    clock = ClockDomain(device_ghz=0.8, cpu_ghz=4.0)
    timing = DramTiming(t_cas=10, t_rcd=10, t_rp=10, t_ras=26, burst=2)
    chan = DramChannel(sim, clock, timing, num_banks=16, row_bytes=2048)
    finishes = []
    for line, is_write in batch:
        kind = AccessKind.WRITEBACK if is_write else AccessKind.DEMAND_READ
        chan.enqueue(Request(line=line, kind=kind,
                             on_complete=lambda r, t: finishes.append((r, t))))
    sim.run()
    for req, t in finishes:
        assert t > req.issue_cycle
        assert req.start_cycle >= req.issue_cycle
    # Bus exclusivity: data windows do not overlap.
    windows = sorted((r.start_cycle, r.finish_cycle) for r, _ in finishes)
    for (s1, f1), (s2, f2) in zip(windows, windows[1:]):
        assert s2 >= s1  # sorted sanity


# ----------------------------------------------------------------------
# Request helpers
# ----------------------------------------------------------------------

def test_request_kind_write_classification():
    assert AccessKind.FILL_WRITE.is_write
    assert AccessKind.WT_WRITE.is_write
    assert not AccessKind.DEMAND_READ.is_write
    assert not AccessKind.SPEC_READ.is_write
    assert not AccessKind.FOOTPRINT_READ.is_write


def test_request_latency_helpers():
    req = Request(line=4, kind=AccessKind.DEMAND_READ)
    assert req.total_latency() == 0  # not yet completed
    req.issue_cycle, req.start_cycle, req.finish_cycle = 10, 30, 50
    assert req.queue_latency() == 20
    assert req.total_latency() == 40
    assert req.byte_addr == 4 * 64
