"""Unit and behavioural tests for the DRAM channel model."""

import pytest

from repro.engine import Simulator
from repro.engine.clock import ClockDomain
from repro.mem.channel import DramChannel
from repro.mem.request import AccessKind, Request
from repro.mem.timing import DramTiming


def make_channel(sim, turnaround=8, extra_io=0, banks=16, write_hi=16):
    clock = ClockDomain(device_ghz=1.2, cpu_ghz=4.0)
    timing = DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4,
                        turnaround=turnaround, extra_io=extra_io)
    return DramChannel(sim, clock, timing, num_banks=banks, row_bytes=2048,
                       write_hi=write_hi)


def run_reads(lines, **kwargs):
    sim = Simulator()
    chan = make_channel(sim, **kwargs)
    done = []
    for line in lines:
        chan.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ,
                             on_complete=lambda r, t: done.append((r.line, t))))
    sim.run()
    return sim, chan, done


def test_single_read_latency_is_row_miss_plus_burst():
    sim, chan, done = run_reads([0])
    # Row miss: (15+15+15) dev cycles = 150 CPU + burst 14 CPU.
    assert done == [(0, 164)]
    assert chan.stats.row_misses == 1


def test_second_read_same_row_is_row_hit():
    sim, chan, done = run_reads([0, 1])
    assert chan.stats.row_hits == 1
    assert chan.stats.row_misses == 1
    # The second access streams right after the first burst.
    assert done[1][1] - done[0][1] <= 16


def test_streaming_reads_saturate_bus():
    n = 512
    sim, chan, done = run_reads(list(range(n)))
    assert len(done) == n
    # Bus busy fraction over the duration should be near 1 for streaming.
    assert chan.stats.busy_cycles / sim.now > 0.85


def test_random_reads_are_slower_than_streaming():
    import random

    rng = random.Random(7)
    n = 256
    _, chan_s, _ = run_reads(list(range(n)))
    stream_cycles = chan_s.stats.busy_cycles
    sim_r, chan_r, done_r = run_reads([rng.randrange(1 << 24) for _ in range(n)])
    sim_s, _, _ = run_reads(list(range(n)))
    assert len(done_r) == n
    assert sim_r.now > sim_s.now  # random pattern takes longer
    assert chan_r.stats.row_hit_rate() < 0.5


def test_completion_order_matches_fifo_for_same_row():
    _, _, done = run_reads([0, 1, 2, 3])
    finish_times = [t for _, t in done]
    assert finish_times == sorted(finish_times)
    assert [line for line, _ in done] == [0, 1, 2, 3]


def test_writes_complete_and_are_counted():
    sim = Simulator()
    chan = make_channel(sim)
    for line in range(8):
        chan.enqueue(Request(line=line, kind=AccessKind.WRITEBACK))
    sim.run()
    assert chan.stats.writes_done == 8
    assert chan.stats.cas_by_kind[AccessKind.WRITEBACK] == 8


def test_reads_prioritized_over_small_write_backlog():
    sim = Simulator()
    chan = make_channel(sim, write_hi=16)
    order = []
    for line in range(4):
        chan.enqueue(Request(line=line + 100, kind=AccessKind.WRITEBACK,
                             on_complete=lambda r, t: order.append(("w", r.line))))
    for line in range(4):
        chan.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ,
                             on_complete=lambda r, t: order.append(("r", r.line))))
    sim.run()
    kinds = [k for k, _ in order]
    # With only four writes queued (below write_hi) reads go first... except
    # the very first dispatch may pick a write since reads arrive later.
    assert kinds.count("r") == 4 and kinds.count("w") == 4
    first_read = kinds.index("r")
    last_read = len(kinds) - 1 - kinds[::-1].index("r")
    # Reads finish as a contiguous early block once they arrive.
    assert last_read - first_read == 3


def test_write_drain_triggers_at_high_watermark():
    sim = Simulator()
    chan = make_channel(sim, write_hi=4)
    served = []
    # Seed a long read stream, then a burst of writes above the watermark.
    for line in range(32):
        chan.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ,
                             on_complete=lambda r, t: served.append("r")))
    for line in range(8):
        chan.enqueue(Request(line=line + 10_000, kind=AccessKind.WRITEBACK,
                             on_complete=lambda r, t: served.append("w")))
    sim.run()
    # Writes were drained before all 32 reads finished (batch interleave).
    first_w = served.index("w")
    assert first_w < 32
    assert chan.stats.mode_switches >= 2


def test_extra_io_adds_fixed_latency():
    _, _, done_no_io = run_reads([0], extra_io=0)
    _, _, done_io = run_reads([0], extra_io=10)
    # Ten 1.2 GHz cycles = 34 CPU cycles, applied after the data burst.
    assert done_io[0][1] - done_no_io[0][1] == pytest.approx(34, abs=1)


def test_burst_override_extends_bus_time():
    sim = Simulator()
    chan = make_channel(sim)
    done = []
    chan.enqueue(Request(line=0, kind=AccessKind.TAD_READ, burst_override=6,
                         on_complete=lambda r, t: done.append(t)))
    sim.run()
    # 6 device cycles = 20 CPU cycles of bus time instead of 14.
    assert done[0] == 170


def test_bank_parallelism_overlaps_activates():
    # Requests to different banks should overlap their activate latencies:
    # total time well under n * row_miss_latency.
    n = 16
    lines = [i * 32 for i in range(n)]  # one line per row -> distinct banks
    sim, chan, done = run_reads(lines)
    assert len(done) == n
    assert sim.now < n * 164 * 0.5


def test_queue_length_visibility():
    sim = Simulator()
    chan = make_channel(sim)
    for line in range(5):
        chan.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ))
    assert chan.read_queue_len == 5
    assert chan.expected_read_latency() > 0
    sim.run()
    assert chan.read_queue_len == 0
