"""Tests for the repro-experiment command-line interface."""

import json
from dataclasses import replace

import pytest

from repro.experiments.exec import (
    CellExecutionError,
    ExperimentSpec,
    TaskCell,
    run_spec,
)
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import main, run_experiment


def test_cli_runs_fig01_with_chart_and_csv(tmp_path, capsys):
    exit_code = main(["fig01", "--scale", "smoke", "--no-cache",
                      "--chart", "1", "--csv", str(tmp_path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "Fig. 1" in out
    assert "█" in out                      # chart rendered
    assert (tmp_path / "fig01.csv").exists()
    header = (tmp_path / "fig01.csv").read_text().splitlines()[0]
    assert header.startswith("hit_rate")


def test_cli_rejects_unknown_experiment(capsys):
    assert main(["fig99"]) == 1
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_continues_past_failed_experiment(capsys):
    # One broken experiment must not abort the batch: fig01 still runs,
    # and the final exit code reports the failure.
    exit_code = main(["fig99", "fig01", "--scale", "smoke", "--no-cache"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "Fig. 1" in captured.out
    assert "unknown experiment" in captured.err
    assert "1 experiment(s) failed: fig99" in captured.err


def test_cli_list_prints_registry(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "Fig. 6" in out
    assert "workloads" in out              # awareness column


def test_cli_warns_when_workloads_ignored(capsys):
    exit_code = main(["fig01", "--scale", "smoke", "--no-cache",
                      "--workloads", "mcf"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "--workloads ignored by fig01" in captured.err


def test_cli_reports_cache_hits_in_summary(tmp_path, capsys):
    args = ["fig01", "--scale", "smoke", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "0 cached" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "0 executed" in warm            # warm cache: no simulations


def test_run_experiment_passes_workload_subset():
    result = run_experiment("fig07", scale_name="smoke", workloads=["mcf"])
    names = [row[0] for row in result.rows]
    assert "mcf" in names
    assert "omnetpp" not in names


def test_run_experiment_warns_on_ignored_workloads():
    with pytest.warns(UserWarning, match="does not take a workload"):
        result = run_experiment("fig01", scale_name="smoke",
                                workloads=["mcf"])
    assert result.rows


def test_cli_scale_flag_validation(capsys):
    with pytest.raises(SystemExit):
        main(["fig01", "--scale", "gigantic"])


# ----------------------------------------------------------------------
# Failure accounting (fake specs: trivial task cells, no simulation)
# ----------------------------------------------------------------------

def _cell_value(value=1.0):
    return value


def _cell_boom():
    raise RuntimeError("boom")


def _ok_cells(scale, workloads):
    yield TaskCell("ok1", _cell_value, (("value", 1.0),))
    yield TaskCell("ok2", _cell_value, (("value", 2.0),))


def _boom_cells(scale, workloads):
    yield TaskCell("fine", _cell_value, (("value", 3.0),))
    yield TaskCell("broken", _cell_boom)


def _fake_render(ctx):
    result = ctx.new_result()
    for label in sorted(ctx.results):
        result.add(label, ctx[label])
    return result


def _ok_claims():
    from repro.validate import Claim, Col, sign
    return (Claim(id="figok.positive", claim="every cell is positive",
                  predicate=sign(Col("value"), above=0.0)),)


def _impossible_claims():
    from repro.validate import Claim, Col, sign
    return (Claim(id="figbad.huge", claim="values exceed 100",
                  predicate=sign(Col("value"), above=100.0)),)


OK_SPEC = ExperimentSpec(name="figok", title="Fig. OK",
                         headers=("cell", "value"), cells=_ok_cells,
                         render=_fake_render, claims=_ok_claims)
BOOM_SPEC = ExperimentSpec(name="figboom", title="Fig. BOOM",
                           headers=("cell", "value"), cells=_boom_cells,
                           render=_fake_render)
BAD_SPEC = replace(OK_SPEC, name="figbad", claims=_impossible_claims)


@pytest.fixture
def fake_specs(monkeypatch):
    from repro.experiments import runner
    real_get_spec = runner.get_spec
    fakes = {"figok": OK_SPEC, "figboom": BOOM_SPEC, "figbad": BAD_SPEC}
    monkeypatch.setattr(
        runner, "get_spec",
        lambda name: fakes.get(name) or real_get_spec(name))
    for name in fakes:
        monkeypatch.setitem(runner.EXPERIMENTS, name, f"<test:{name}>")


def test_run_spec_failure_carries_partial_stats():
    with pytest.raises(CellExecutionError) as excinfo:
        run_spec(BOOM_SPEC, scale="smoke")
    err = excinfo.value
    assert "1 of 2 cells failed" in str(err)
    assert err.stats is not None
    assert err.stats.executed == 1       # the cell that DID run
    assert err.stats.failed == 1


def test_cli_names_failed_experiment_and_accounts_stats(fake_specs, capsys):
    exit_code = main(["figok", "figboom", "--no-cache", "--jobs", "1"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "error: figboom:" in captured.err
    assert "1 experiment(s) failed: figboom" in captured.err
    # The failing sweep's executed cell is folded into the batch totals.
    assert "[run summary: 4 cells: 3 executed, 0 cached, 1 failed]" \
        in captured.out


def test_cli_validate_records_failed_experiment(fake_specs, tmp_path,
                                                capsys):
    out_path = tmp_path / "validation.json"
    exit_code = main(["figok", "figboom", "--no-cache", "--jobs", "1",
                      "--validate", "--validation-out", str(out_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    doc = json.loads(out_path.read_text())
    assert doc["experiments"]["figboom"]["verdict"] == "error"
    assert doc["experiments"]["figok"]["verdict"] == "pass"
    assert doc["summary"]["errors"] == 1
    assert "FAILING: figboom" in captured.out


def test_cli_validate_gates_on_claim_failure_alone(fake_specs, tmp_path,
                                                   capsys):
    # figbad runs all its cells fine; only its registered claim fails.
    out_path = tmp_path / "validation.json"
    exit_code = main(["figbad", "--no-cache", "--jobs", "1",
                      "--validate", "--validation-out", str(out_path)])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "experiment(s) failed" not in captured.err
    doc = json.loads(out_path.read_text())
    assert doc["experiments"]["figbad"]["verdict"] == "fail"
    assert "FAILING: figbad" in captured.out
