"""Tests for the repro-experiment command-line interface."""

import pytest

from repro.experiments.runner import main, run_experiment


def test_cli_runs_fig01_with_chart_and_csv(tmp_path, capsys):
    exit_code = main(["fig01", "--scale", "smoke", "--chart", "1",
                      "--csv", str(tmp_path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "Fig. 1" in out
    assert "█" in out                      # chart rendered
    assert (tmp_path / "fig01.csv").exists()
    header = (tmp_path / "fig01.csv").read_text().splitlines()[0]
    assert header.startswith("hit_rate")


def test_cli_rejects_unknown_experiment(capsys):
    assert main(["fig99"]) == 1
    assert "unknown experiment" in capsys.readouterr().err


def test_run_experiment_passes_workload_subset():
    result = run_experiment("fig07", scale_name="smoke", workloads=["mcf"])
    names = [row[0] for row in result.rows]
    assert "mcf" in names
    assert "omnetpp" not in names


def test_run_experiment_ignores_workloads_for_fig01():
    result = run_experiment("fig01", scale_name="smoke",
                            workloads=["mcf"])  # silently ignored
    assert result.rows


def test_cli_scale_flag_validation(capsys):
    with pytest.raises(SystemExit):
        main(["fig01", "--scale", "gigantic"])
