"""Tests for the repro-experiment command-line interface."""

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import main, run_experiment


def test_cli_runs_fig01_with_chart_and_csv(tmp_path, capsys):
    exit_code = main(["fig01", "--scale", "smoke", "--no-cache",
                      "--chart", "1", "--csv", str(tmp_path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "Fig. 1" in out
    assert "█" in out                      # chart rendered
    assert (tmp_path / "fig01.csv").exists()
    header = (tmp_path / "fig01.csv").read_text().splitlines()[0]
    assert header.startswith("hit_rate")


def test_cli_rejects_unknown_experiment(capsys):
    assert main(["fig99"]) == 1
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_continues_past_failed_experiment(capsys):
    # One broken experiment must not abort the batch: fig01 still runs,
    # and the final exit code reports the failure.
    exit_code = main(["fig99", "fig01", "--scale", "smoke", "--no-cache"])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "Fig. 1" in captured.out
    assert "unknown experiment" in captured.err
    assert "1 experiment(s) failed: fig99" in captured.err


def test_cli_list_prints_registry(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "Fig. 6" in out
    assert "workloads" in out              # awareness column


def test_cli_warns_when_workloads_ignored(capsys):
    exit_code = main(["fig01", "--scale", "smoke", "--no-cache",
                      "--workloads", "mcf"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "--workloads ignored by fig01" in captured.err


def test_cli_reports_cache_hits_in_summary(tmp_path, capsys):
    args = ["fig01", "--scale", "smoke", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "0 cached" in cold
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "0 executed" in warm            # warm cache: no simulations


def test_run_experiment_passes_workload_subset():
    result = run_experiment("fig07", scale_name="smoke", workloads=["mcf"])
    names = [row[0] for row in result.rows]
    assert "mcf" in names
    assert "omnetpp" not in names


def test_run_experiment_warns_on_ignored_workloads():
    with pytest.warns(UserWarning, match="does not take a workload"):
        result = run_experiment("fig01", scale_name="smoke",
                                workloads=["mcf"])
    assert result.rows


def test_cli_scale_flag_validation(capsys):
    with pytest.raises(SystemExit):
        main(["fig01", "--scale", "gigantic"])
