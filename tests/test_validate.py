"""Tests for the paper-shape validation subsystem (repro.validate)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_spec
from repro.validate import (
    Cells,
    Claim,
    ClaimDataError,
    Col,
    build_validation,
    crossover,
    diff_validations,
    evaluate_result,
    load_validation,
    monotone_falling,
    monotone_rising,
    ordering,
    peak_then_fall,
    render_markdown,
    render_verdict_table,
    sign,
    within_rel,
    write_validation,
)
from repro.validate.cli import main as validate_main
from repro.validate.evaluate import doc_failed, failed_entry
from repro.validate.predicates import ResultTable


def table(headers, rows) -> ExperimentResult:
    return ExperimentResult(experiment="T", headers=list(headers),
                            rows=[list(row) for row in rows])


SPEEDUPS = table(
    ("workload", "ws", "ref"),
    [("mcf", 1.4, 1.0), ("omnetpp", 1.2, 1.0), ("milc", 1.1, 1.0),
     ("GMEAN", 1.23, "")],
)
CURVE = table(
    ("h", "bw"),
    [("0.0", 38.4), ("0.5", 89.6), ("1.0", 51.2)],
)


def run(predicate, result):
    return predicate.evaluate(ResultTable.of(result))


# ----------------------------------------------------------------------
# Selectors
# ----------------------------------------------------------------------

def test_col_excludes_aggregate_rows():
    series = Col("ws").resolve(ResultTable.of(SPEEDUPS))
    assert [label for label, _ in series] == ["mcf", "omnetpp", "milc"]


def test_col_explicit_rows_select_and_reorder():
    series = Col("ws", rows=("milc", "mcf")).resolve(ResultTable.of(SPEEDUPS))
    assert series == [("milc", 1.1), ("mcf", 1.4)]


def test_selector_errors_on_missing_data():
    t = ResultTable.of(SPEEDUPS)
    with pytest.raises(ClaimDataError):
        Col("nope").resolve(t)
    with pytest.raises(ClaimDataError):
        Col("ws", rows=("astar",)).resolve(t)
    with pytest.raises(ClaimDataError):
        Cells(()).resolve(t)
    # A table holding only aggregate rows answers no whole-column claim.
    only_agg = ResultTable.of(table(("w", "ws"), [("GMEAN", 1.2)]))
    with pytest.raises(ClaimDataError):
        Col("ws").resolve(only_agg)


def test_non_numeric_cell_errors():
    with pytest.raises(ClaimDataError):
        Cells((("GMEAN", "ref"),)).resolve(ResultTable.of(SPEEDUPS))


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------

def test_ordering_pass_fail_and_margin():
    ok, _ = run(ordering(("mcf", "ws"), ("omnetpp", "ws"), ("milc", "ws")),
                SPEEDUPS)
    assert ok
    ok, _ = run(ordering(("milc", "ws"), ("mcf", "ws")), SPEEDUPS)
    assert not ok
    # margin demands a minimum gap: 1.4 vs 1.2 clears 0.1 but not 0.3.
    assert run(ordering(("mcf", "ws"), ("omnetpp", "ws"), margin=0.1),
               SPEEDUPS)[0]
    assert not run(ordering(("mcf", "ws"), ("omnetpp", "ws"), margin=0.3),
                   SPEEDUPS)[0]


def test_ordering_ties_fail_and_single_point_errors():
    tied = table(("w", "ws"), [("a", 1.0), ("b", 1.0)])
    assert not run(ordering(("a", "ws"), ("b", "ws")), tied)[0]
    with pytest.raises(ClaimDataError):
        run(ordering(("mcf", "ws")), SPEEDUPS)


def test_ordering_nan_fails_rather_than_errors():
    bad = table(("w", "ws"), [("a", float("nan")), ("b", 1.0)])
    ok, observed = run(ordering(("a", "ws"), ("b", "ws")), bad)
    assert not ok
    assert "non-finite" in observed


def test_monotone_rising_and_falling():
    rising = table(("x", "y"), [("a", 1.0), ("b", 2.0), ("c", 3.0)])
    assert run(monotone_rising(Col("y")), rising)[0]
    assert not run(monotone_falling(Col("y")), rising)[0]
    falling = table(("x", "y"), [("a", 3.0), ("b", 2.0), ("c", 1.0)])
    assert run(monotone_falling(Col("y")), falling)[0]


def test_monotone_tol_forgives_small_wobbles():
    wobble = table(("x", "y"), [("a", 1.0), ("b", 0.995), ("c", 2.0)])
    assert not run(monotone_rising(Col("y")), wobble)[0]
    assert run(monotone_rising(Col("y"), tol=0.01), wobble)[0]


def test_monotone_strict_rejects_ties():
    flat = table(("x", "y"), [("a", 1.0), ("b", 1.0), ("c", 2.0)])
    assert run(monotone_rising(Col("y")), flat)[0]
    assert not run(monotone_rising(Col("y"), strict=True), flat)[0]


def test_monotone_single_point_errors():
    with pytest.raises(ClaimDataError):
        run(monotone_rising(Col("ws", rows=("mcf",))), SPEEDUPS)


def test_peak_then_fall_requires_interior_peak():
    assert run(peak_then_fall(Col("bw")), CURVE)[0]
    edge = table(("h", "bw"), [("a", 5.0), ("b", 4.0), ("c", 3.0)])
    assert not run(peak_then_fall(Col("bw")), edge)[0]


def test_peak_then_fall_window_and_min_drop():
    assert run(peak_then_fall(Col("bw"), peak_within=("0.5",)), CURVE)[0]
    ok, observed = run(peak_then_fall(Col("bw"), peak_within=("0.0",)), CURVE)
    assert not ok
    assert "peak outside" in observed
    # 89.6 -> 51.2 is a 43% drop: clears 0.4, not 0.5.
    assert run(peak_then_fall(Col("bw"), min_drop=0.4), CURVE)[0]
    assert not run(peak_then_fall(Col("bw"), min_drop=0.5), CURVE)[0]


def test_peak_then_fall_needs_three_points():
    short = table(("h", "bw"), [("a", 1.0), ("b", 2.0)])
    with pytest.raises(ClaimDataError):
        run(peak_then_fall(Col("bw")), short)


def test_crossover_detects_sign_flip():
    xtab = table(
        ("h", "dram", "edram"),
        [("0.00", 38.4, 70.0), ("0.50", 80.0, 89.6), ("1.00", 102.4, 51.2)],
    )
    assert run(crossover("edram", "dram", ("0.00", "1.00")), xtab)[0]
    assert not run(crossover("edram", "dram", ("0.00", "0.50")), xtab)[0]
    with pytest.raises(ClaimDataError):
        run(crossover("edram", "dram", ("0.00",)), xtab)
    with pytest.raises(ClaimDataError):
        run(crossover("edram", "dram", ("0.00", "2.00")), xtab)


def test_within_rel_target_and_reference():
    assert run(within_rel(Cells((("GMEAN", "ws"),)), 0.05, target=1.25),
               SPEEDUPS)[0]
    assert not run(within_rel(Cells((("GMEAN", "ws"),)), 0.01, target=1.0),
                   SPEEDUPS)[0]
    # Paired column: worst deviation is mcf's 40%.
    assert run(within_rel(Col("ws"), 0.5, reference=Col("ref")), SPEEDUPS)[0]
    assert not run(within_rel(Col("ws"), 0.3, reference=Col("ref")),
                   SPEEDUPS)[0]


def test_within_rel_configuration_errors():
    with pytest.raises(ClaimDataError):
        run(within_rel(Col("ws"), 0.1), SPEEDUPS)
    mismatched = within_rel(Col("ws"), 0.1,
                            reference=Col("ref", rows=("mcf",)))
    with pytest.raises(ClaimDataError):
        run(mismatched, SPEEDUPS)


def test_sign_bounds_are_strict():
    assert run(sign(("GMEAN", "ws"), above=1.0), SPEEDUPS)[0]
    assert not run(sign(("mcf", "ref"), above=1.0), SPEEDUPS)[0]  # tie
    assert run(sign(("milc", "ws"), below=1.2), SPEEDUPS)[0]
    assert run(sign(Col("ws"), above=1.0), SPEEDUPS)[0]
    assert not run(sign(Col("ws"), above=1.15), SPEEDUPS)[0]
    with pytest.raises(ClaimDataError):
        run(sign(("mcf", "ws")), SPEEDUPS)


# ----------------------------------------------------------------------
# Claims and the validation document
# ----------------------------------------------------------------------

PASSING = Claim(id="t.good", claim="speedups beat one", paper="Fig. T",
                predicate=sign(("GMEAN", "ws"), above=1.0))
FAILING = Claim(id="t.bad", claim="speedups beat two",
                predicate=sign(("GMEAN", "ws"), above=2.0))
BROKEN = Claim(id="t.broken", claim="missing workload",
               predicate=sign(("astar", "ws"), above=1.0))
NOTED = Claim(id="t.noted", claim="milc still gains",
              predicate=sign(("milc", "ws"), above=1.0),
              deviation="smaller than the paper's bar")


def test_claim_evaluate_statuses():
    assert PASSING.evaluate(SPEEDUPS)["status"] == "pass"
    assert FAILING.evaluate(SPEEDUPS)["status"] == "fail"
    entry = BROKEN.evaluate(SPEEDUPS)
    assert entry["status"] == "error"
    assert "astar" in entry["observed"]
    assert entry["predicate"] == "sign"
    assert entry["paper"] == ""


def spec_with(*claims, title="Fig. T"):
    return SimpleNamespace(title=title, claims=lambda: claims)


def test_verdict_folding():
    assert evaluate_result(spec_with(PASSING), SPEEDUPS)["verdict"] == "pass"
    assert (evaluate_result(spec_with(PASSING, NOTED), SPEEDUPS)["verdict"]
            == "pass-deviation")
    assert (evaluate_result(spec_with(PASSING, FAILING), SPEEDUPS)["verdict"]
            == "fail")
    # error outranks fail; a claimless spec yields no entry at all.
    assert (evaluate_result(spec_with(FAILING, BROKEN), SPEEDUPS)["verdict"]
            == "error")
    assert evaluate_result(SimpleNamespace(claims=None), SPEEDUPS) is None


def make_doc(*claims):
    claims = claims or (PASSING, NOTED)
    entries = {
        "figt": evaluate_result(spec_with(*claims), SPEEDUPS),
        "figz": evaluate_result(spec_with(PASSING), SPEEDUPS),
    }
    return build_validation(entries, scale="smoke")


def test_build_validation_counts_and_order():
    doc = make_doc(PASSING, FAILING, BROKEN)
    assert list(doc["experiments"]) == ["figt", "figz"]
    assert doc["summary"] == {"experiments": 2, "claims": 4, "passed": 2,
                              "failed": 1, "errors": 1}
    assert doc_failed(doc)
    assert not doc_failed(make_doc())


def test_failed_entry_gates_the_document():
    doc = build_validation({"figt": failed_entry("Fig. T", "3 cells failed")},
                           scale="smoke")
    assert doc["experiments"]["figt"]["verdict"] == "error"
    assert doc["summary"]["errors"] == 1
    assert doc_failed(doc)
    assert "run failed" in render_verdict_table(doc)


def test_round_trip_is_deterministic(tmp_path):
    first = write_validation(tmp_path / "a.json", make_doc())
    second = write_validation(tmp_path / "b.json", make_doc())
    assert first.read_bytes() == second.read_bytes()
    loaded = load_validation(first)
    assert loaded == make_doc()
    assert render_markdown(loaded) == render_markdown(make_doc())


def test_markdown_sections():
    text = render_markdown(make_doc(PASSING, FAILING, NOTED))
    assert "# Paper-shape validation" in text
    assert "| experiment | verdict |" in text
    assert "`t.bad`" in text
    assert "## Failing claims" in text
    assert "## Known deviations (≈)" in text
    clean = render_markdown(make_doc(PASSING))
    assert "## Failing claims" not in clean
    assert "✔" in clean


def test_load_validation_rejects_bad_documents(tmp_path):
    with pytest.raises(ConfigError):
        load_validation(tmp_path / "missing.json")
    not_ours = tmp_path / "other.json"
    not_ours.write_text('{"schema": "something-else"}')
    with pytest.raises(ConfigError):
        load_validation(not_ours)
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{nope")
    with pytest.raises(ConfigError):
        load_validation(garbled)


# ----------------------------------------------------------------------
# Verdict diffing
# ----------------------------------------------------------------------

def mini_doc(verdict, status, name="figt", claim_id="figt.x"):
    entry = {"title": "T", "verdict": verdict,
             "claims": [{"id": claim_id, "status": status}]}
    return build_validation({name: entry}, scale="smoke")


def test_diff_flags_flips_as_regressions():
    diff = diff_validations(mini_doc("pass", "pass"),
                            mini_doc("fail", "fail"))
    assert diff.regressed
    assert "figt: pass -> fail" in diff.flips
    assert "figt.x: pass -> fail" in diff.flips
    assert "REGRESSED" in diff.render()


def test_diff_missing_experiment_regresses():
    base = mini_doc("pass", "pass")
    empty = build_validation({}, scale="smoke")
    diff = diff_validations(base, empty)
    assert diff.missing_experiments == ["figt"]
    assert diff.regressed


def test_diff_improvements_and_softening_do_not_gate():
    better = diff_validations(mini_doc("fail", "fail"),
                              mini_doc("pass", "pass"))
    assert better.improvements and not better.regressed
    softer = diff_validations(mini_doc("pass", "pass"),
                              mini_doc("pass-deviation", "pass"))
    assert softer.softened and not softer.regressed
    same = diff_validations(mini_doc("error", "error"),
                            mini_doc("error", "error"))
    assert same.still_failing and not same.regressed


def test_diff_tracks_added_and_removed_claims():
    base = mini_doc("pass", "pass", claim_id="figt.old")
    cand = mini_doc("pass", "pass", claim_id="figt.new")
    diff = diff_validations(base, cand)
    assert diff.removed == ["figt.old"]
    assert diff.added == ["figt.new"]
    assert not diff.regressed


# ----------------------------------------------------------------------
# The repro-validate CLI gate
# ----------------------------------------------------------------------

def shape_doc(rows):
    """A document judging a real ordering claim over a tiny fixture."""
    result = table(("cfg", "ws"), rows)
    claim = Claim(id="fx.order", claim="dap beats the baseline",
                  predicate=ordering(("dap", "ws"), ("base", "ws")))
    entry = evaluate_result(spec_with(claim, title="FX"), result)
    return build_validation({"fx": entry}, scale="smoke")


def test_cli_diff_fails_on_flipped_ordering(tmp_path, capsys):
    base = write_validation(tmp_path / "base.json",
                            shape_doc([("base", 1.0), ("dap", 1.2)]))
    flipped = write_validation(tmp_path / "cand.json",
                               shape_doc([("base", 1.2), ("dap", 1.0)]))
    assert validate_main(["diff", str(base), str(flipped)]) == 1
    out = capsys.readouterr().out
    assert "fx: pass -> fail" in out
    assert "REGRESSED" in out
    assert validate_main(["diff", str(base), str(base)]) == 0
    assert validate_main(["diff", str(base), str(flipped), "--no-fail"]) == 0


def test_cli_diff_defaults_to_committed_baseline(tmp_path, capsys,
                                                 monkeypatch):
    monkeypatch.chdir(tmp_path)
    write_validation("VERDICTS.json", shape_doc([("base", 1.0), ("dap", 1.2)]))
    flipped = write_validation("cand.json",
                               shape_doc([("base", 1.2), ("dap", 1.0)]))
    assert validate_main(["diff", str(flipped)]) == 1
    assert "against VERDICTS.json" in capsys.readouterr().out


def test_cli_report_renders_markdown(tmp_path, capsys):
    path = write_validation(tmp_path / "v.json",
                            shape_doc([("base", 1.0), ("dap", 1.2)]))
    assert validate_main(["report", str(path)]) == 0
    assert "# Paper-shape validation" in capsys.readouterr().out


def test_cli_reports_missing_documents(tmp_path, capsys):
    missing = str(tmp_path / "absent.json")
    assert validate_main(["diff", missing, missing]) == 2
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Registry coverage
# ----------------------------------------------------------------------

def test_every_experiment_registers_claims():
    total, seen = 0, set()
    for name in EXPERIMENTS:
        spec = get_spec(name)
        assert spec.claims is not None, f"{name} has no claims block"
        claims = tuple(spec.claims())
        assert claims, f"{name} registered an empty claims block"
        for claim in claims:
            assert claim.id.startswith(f"{name}."), claim.id
            assert claim.id not in seen, f"duplicate claim id {claim.id}"
            assert claim.claim, f"{claim.id} has no prose statement"
            seen.add(claim.id)
        total += len(claims)
    assert total >= 20
