"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.engine import Simulator
from repro.errors import SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(1))
    sim.run(until=50)
    assert fired == []
    assert sim.now == 50
    sim.run()
    assert fired == [1]


def test_events_scheduled_during_dispatch_are_honoured():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, lambda: seen.append(sim.now))

    sim.schedule(10, first)
    sim.run()
    assert seen == [10, 15]


def test_schedule_in_past_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5, lambda: None)


def test_step_dispatches_single_event():
    sim = Simulator()
    out = []
    sim.schedule(1, lambda: out.append("x"))
    sim.schedule(2, lambda: out.append("y"))
    assert sim.step()
    assert out == ["x"]
    assert sim.step()
    assert not sim.step()
    assert out == ["x", "y"]


def test_pending_and_peek():
    sim = Simulator()
    assert sim.peek_time() is None
    sim.schedule(42, lambda: None)
    assert sim.pending == 1
    assert sim.peek_time() == 42


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=123)
    assert sim.now == 123


def test_events_dispatched_counter_accumulates():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_dispatched == 4


def test_max_events_with_until_pauses_without_advancing_clock():
    # The run() contract: when the event budget runs out first, the
    # clock parks at the last dispatched event and is NOT advanced to
    # `until`, so a later run() resumes with the rest still in the
    # future.
    sim = Simulator()
    fired = []
    for t in (10, 20, 30, 40):
        sim.schedule(t, lambda t=t: fired.append(t))
    assert sim.run(until=100, max_events=2) == 2
    assert fired == [10, 20]
    assert sim.now == 20
    assert sim.pending == 2
    # Resume with the horizon binding first: the event beyond `until`
    # stays queued and the clock lands exactly on the horizon.
    assert sim.run(until=35, max_events=10) == 1
    assert fired == [10, 20, 30]
    assert sim.now == 35
    assert sim.pending == 1
    # Drain the tail; an emptied queue waits out the horizon.
    assert sim.run(until=100) == 1
    assert fired == [10, 20, 30, 40]
    assert sim.now == 100
    assert sim.pending == 0


def test_max_events_zero_dispatches_nothing():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(5))
    assert sim.run(until=50, max_events=0) == 0
    assert fired == [] and sim.now == 0 and sim.pending == 1
