"""The telemetry tailer and the atomic manifest writer."""

import json
import os

import pytest

from repro.obs.progress import TraceTailer
from repro.obs.trace import write_manifest


def _append(path, text):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text)


def _record(i, kind="sample"):
    return {"t": kind, "cycle": i * 100, "values": {"ipc": 1.0}}


# ----------------------------------------------------------------------
# TraceTailer
# ----------------------------------------------------------------------

def test_tailer_yields_each_record_exactly_once(tmp_path):
    trace = tmp_path / "mcf.trace.jsonl"
    tailer = TraceTailer(tmp_path)
    assert tailer.poll() == []  # empty dir, nothing to do

    _append(trace, json.dumps(_record(0)) + "\n")
    assert [r["cycle"] for _, r in tailer.poll()] == [0]
    assert tailer.poll() == []  # no re-delivery

    _append(trace, json.dumps(_record(1)) + "\n" + json.dumps(_record(2))
            + "\n")
    polled = tailer.poll()
    assert [stem for stem, _ in polled] == ["mcf", "mcf"]
    assert [r["cycle"] for _, r in polled] == [100, 200]


def test_tailer_holds_back_partially_written_lines(tmp_path):
    trace = tmp_path / "mcf.trace.jsonl"
    tailer = TraceTailer(tmp_path)
    full = json.dumps(_record(0))
    _append(trace, full[:10])  # writer flushed mid-record
    assert tailer.poll() == []

    _append(trace, full[10:] + "\n")
    assert [r["cycle"] for _, r in tailer.poll()] == [0]


def test_tailer_samples_probe_records_but_not_meta(tmp_path):
    trace = tmp_path / "mcf.trace.jsonl"
    tailer = TraceTailer(tmp_path, sample=3)
    lines = [json.dumps(_record(i)) for i in range(7)]
    lines.insert(0, json.dumps({"t": "meta", "probes": ["ipc"]}))
    _append(trace, "\n".join(lines) + "\n")

    polled = tailer.poll()
    kinds = [r["t"] for _, r in polled]
    assert kinds[0] == "meta"  # non-sample records always pass
    assert [r["cycle"] for _, r in polled if r["t"] == "sample"] == [0, 300,
                                                                    600]


def test_tailer_watches_files_appearing_mid_run(tmp_path):
    tailer = TraceTailer(tmp_path)
    assert tailer.poll() == []
    (tmp_path / "sub").mkdir()
    _append(tmp_path / "sub" / "late.trace.jsonl",
            json.dumps(_record(0)) + "\n")
    assert [stem for stem, _ in tailer.poll()] == ["late"]


def test_tailer_skips_torn_lines_and_non_trace_files(tmp_path):
    _append(tmp_path / "mcf.trace.jsonl", "{not json}\n"
            + json.dumps(_record(1)) + "\n")
    _append(tmp_path / "notes.txt", "ignored\n")
    polled = TraceTailer(tmp_path).poll()
    assert [r["cycle"] for _, r in polled] == [100]


def test_drain_is_a_final_poll(tmp_path):
    trace = tmp_path / "mcf.trace.jsonl"
    tailer = TraceTailer(tmp_path)
    _append(trace, json.dumps(_record(0)) + "\n")
    assert len(tailer.drain()) == 1
    assert tailer.drain() == []


# ----------------------------------------------------------------------
# Atomic manifest writes
# ----------------------------------------------------------------------

def test_write_manifest_is_atomic_and_leaves_no_temp_files(tmp_path):
    path = tmp_path / "run.manifest.json"
    written = write_manifest(path, {"events": 123})
    assert json.loads(path.read_text())["events"] == 123
    assert os.path.samefile(written, path)
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == []


def test_failed_write_keeps_the_previous_manifest_intact(tmp_path):
    path = tmp_path / "run.manifest.json"
    write_manifest(path, {"events": 1})

    with pytest.raises(TypeError):
        write_manifest(path, {"bad": object()})  # not JSON-serializable

    # The install never happened and the aborted temp file was removed.
    assert json.loads(path.read_text()) == {"events": 1}
    assert [p.name for p in tmp_path.iterdir()] == [path.name]


def test_concurrent_writers_use_distinct_temp_files(tmp_path):
    # A stale temp from a killed writer must never be installed or
    # collided with: mkstemp gives every writer a unique name.
    path = tmp_path / "run.manifest.json"
    stale = tmp_path / (path.name + ".stale.tmp")
    stale.write_text("{torn")

    write_manifest(path, {"events": 2})
    assert json.loads(path.read_text()) == {"events": 2}
    assert stale.read_text() == "{torn"  # untouched
