"""The committed determinism golden must match a fresh capture exactly.

``tests/golden/determinism_golden.json`` fingerprints a seeded grid of
smoke cells — per-core cycles/instructions, every channel counter, the
telemetry sample stream, and the SHA-256 of the JSONL trace bytes. It
was captured before the simulator hot-path work and is the contract
that optimization changes *wall clock only*: any change to event order,
stats, or trace bytes shows up as a diff here.

Regenerating the golden (``python -m repro.obs.golden --out ...``) is
only legitimate when a change is *supposed* to alter simulated
behaviour — never to make an optimization pass.
"""

import tempfile
from pathlib import Path

from repro.obs.golden import capture_golden, diff_goldens, load_golden

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism_golden.json"


def test_fresh_capture_matches_committed_golden():
    # trace_dir matters: with it, each cell also runs traced and the
    # capture includes the telemetry fingerprint and trace hash, so the
    # comparison covers observation byte-identity too.
    with tempfile.TemporaryDirectory() as tmp:
        fresh = capture_golden(["mcf"], ["baseline", "dap"], trace_dir=tmp)
    committed = load_golden(GOLDEN_PATH)
    diffs = diff_goldens(committed, fresh)
    assert diffs == [], "simulated behaviour drifted from the golden:\n" + \
        "\n".join(diffs)
