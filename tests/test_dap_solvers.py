"""Tests for the three DAP per-window solvers and controller state.

The default platform throughout: B_MS$ = 0.4 accesses/cycle (102.4 GB/s),
B_MM = 0.15 accesses/cycle (38.4 GB/s), W = 64, E = 0.75, so
B_MS$*W = 19.2 and B_MM*W = 7.2 effective accesses per window, K = 11/4.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dap_alloy import DapAlloy, solve_alloy
from repro.core.dap_edram import DapEdram, solve_edram
from repro.core.dap_sectored import DapSectored, solve_sectored
from repro.core.window import EdramWindowStats, WindowStats
from repro.errors import ConfigError

B_MS = 0.4
B_MM = 0.15


def make_dap(**kwargs):
    return DapSectored(b_ms=B_MS, b_mm=B_MM, **kwargs)


def stats(a_ms=0, a_mm=0, rm=0, wm=0, clean=0):
    return WindowStats(a_ms=a_ms, a_mm=a_mm, read_misses=rm, writes=wm,
                       clean_hits=clean)


# ----------------------------------------------------------------------
# Sectored solver
# ----------------------------------------------------------------------

def test_no_partitioning_when_demand_below_cache_bandwidth():
    dap = make_dap()
    t = solve_sectored(stats(a_ms=10, a_mm=2, rm=3), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb == 0 and t.n_wb == 0 and t.n_ifrm == 0
    assert not t.partitioning_active


def test_no_partitioning_when_main_memory_is_bottleneck():
    # A_MS$ - K*A_MM < 0: the MM already has more than its share.
    dap = make_dap()
    t = solve_sectored(stats(a_ms=25, a_mm=20, rm=20), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb == 0 and t.n_wb == 0 and t.n_ifrm == 0


def test_fwb_only_when_fills_suffice():
    dap = make_dap()
    # Demand 30 on cache, 2 on MM; target N_FWB = 30 - 2.75*2 = 24.5,
    # capped by overflow 30 - 19.2 = 10.8, fills available = 12.
    t = solve_sectored(stats(a_ms=30, a_mm=2, rm=12), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb == pytest.approx(10.8)
    assert t.n_wb == 0 and t.n_ifrm == 0


def test_wb_engages_when_fills_run_out():
    dap = make_dap()
    # N_FWB would be 24.5 but only 4 fills exist -> FWB = 4, then
    # (K+1)*N_WB = 30 - 2.75*2 - 4 = 20.5 -> N_WB = 20.5/3.75 ~ 5.47 <= W_m.
    t = solve_sectored(stats(a_ms=30, a_mm=2, rm=4, wm=10), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb == 4
    assert t.n_wb == pytest.approx(20.5 / 3.75)
    assert t.n_ifrm == 0


def test_ifrm_engages_when_writes_run_out():
    dap = make_dap()
    # fills 2, writes 2: FWB=2, WB capped at 2, then Eq. 8:
    # (K+1)*N_IFRM = 30 - 2.75*(2+2) - 2 - 2 = 15 -> N_IFRM = 4.
    t = solve_sectored(stats(a_ms=30, a_mm=2, rm=2, wm=2, clean=100),
                       dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb == 2
    assert t.n_wb == 2
    assert t.n_ifrm == pytest.approx(15 / 3.75)


def test_ifrm_capped_by_clean_hits():
    dap = make_dap()
    t = solve_sectored(stats(a_ms=30, a_mm=2, rm=2, wm=2, clean=1),
                       dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_ifrm == 1


def test_sfrm_uses_spare_mm_bandwidth():
    dap = make_dap()
    # Quiet window: B_MM*W - A_MM = 7.2 - 2 = 5.2 -> SFRM = 0.8*5.2.
    t = solve_sectored(stats(a_ms=10, a_mm=2), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_sfrm == pytest.approx(0.8 * 5.2)


def test_sfrm_zero_when_mm_saturated():
    dap = make_dap()
    t = solve_sectored(stats(a_ms=10, a_mm=10), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_sfrm == 0


def test_sfrm_accounts_for_wb_and_ifrm_traffic():
    dap = make_dap()
    t = solve_sectored(stats(a_ms=30, a_mm=2, rm=2, wm=2, clean=100),
                       dap.bms_w, dap.bmm_w, dap.k)
    expected = max(0.0, 0.8 * (dap.bmm_w - 2 - t.n_wb - t.n_ifrm))
    assert t.n_sfrm == pytest.approx(expected)


@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=200, deadline=None)
def test_solver_invariants(a_ms, a_mm, rm, wm, clean):
    """Property: budgets are non-negative and respect their supplies."""
    dap = make_dap()
    t = solve_sectored(stats(a_ms, a_mm, rm, wm, clean), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb >= 0 and t.n_wb >= 0 and t.n_ifrm >= 0 and t.n_sfrm >= 0
    assert t.n_fwb <= rm + 1e-9
    assert t.n_wb <= wm + 1e-9
    assert t.n_ifrm <= clean + 1e-9
    if a_ms <= dap.bms_w:
        assert not t.partitioning_active
    # SFRM never plans beyond 80% of the memory headroom.
    assert t.n_sfrm <= 0.8 * dap.bmm_w + 1e-9


def test_partition_moves_toward_bandwidth_ratio():
    """After applying the budgets, the residual demand ratio approaches K."""
    dap = make_dap()
    s = stats(a_ms=40, a_mm=4, rm=8, wm=10, clean=50)
    t = solve_sectored(s, dap.bms_w, dap.bmm_w, dap.k)
    new_ms = s.a_ms - t.n_fwb - t.n_wb - t.n_ifrm
    new_mm = s.a_mm + t.n_wb + t.n_ifrm
    before = s.a_ms / (s.a_mm or 1)
    after = new_ms / new_mm
    k = float(dap.k)
    assert abs(after - k) < abs(before - k)


# ----------------------------------------------------------------------
# Sectored controller (windows + credits)
# ----------------------------------------------------------------------

def test_controller_learns_from_previous_window():
    dap = make_dap(window=64)
    # Window 0: heavy cache demand, some fills.
    for _ in range(30):
        dap.note_ms_access()
    for _ in range(12):
        dap.note_read_miss()
    dap.note_mm_access(2)
    # Cross into window 1: FWB credits should be loaded.
    assert dap.allow_fill_bypass(now=70)
    assert dap.decisions["fwb"] == 1


def test_controller_drops_partitioning_after_idle_windows():
    dap = make_dap(window=64)
    for _ in range(30):
        dap.note_ms_access()
    for _ in range(12):
        dap.note_read_miss()
    # Jump several windows ahead: stale demand must not partition.
    assert not dap.allow_fill_bypass(now=64 * 5 + 1)


def test_controller_credits_exhaust():
    dap = make_dap(window=64)
    for _ in range(30):
        dap.note_ms_access()
    dap.note_mm_access(2)
    for _ in range(12):
        dap.note_read_miss()
    grants = sum(dap.allow_fill_bypass(now=70) for _ in range(50))
    # Budget was min(30 - 2.75*2, 30-19.2, 12) = 10.8 -> 10 integer grants
    # (credits floor at zero mid-take for the 11th).
    assert 10 <= grants <= 11
    assert not dap.allow_fill_bypass(now=70)


def test_sfrm_disabled_flag():
    dap = make_dap(enable_sfrm=False)
    dap.note_ms_access(5)
    assert not dap.allow_speculative_read(now=70)


def test_efficiency_scales_window_budget():
    full = DapSectored(b_ms=B_MS, b_mm=B_MM, efficiency=1.0)
    eff = DapSectored(b_ms=B_MS, b_mm=B_MM, efficiency=0.75)
    assert full.bms_w == pytest.approx(25.6)
    assert eff.bms_w == pytest.approx(19.2)


def test_invalid_parameters():
    with pytest.raises(ConfigError):
        DapSectored(b_ms=B_MS, b_mm=B_MM, window=0)
    with pytest.raises(ConfigError):
        DapSectored(b_ms=B_MS, b_mm=B_MM, efficiency=0)


def test_decision_fractions_sum_to_one():
    dap = make_dap()
    for _ in range(30):
        dap.note_ms_access()
    for _ in range(12):
        dap.note_read_miss()
    dap.allow_fill_bypass(now=70)
    fractions = dap.decision_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Alloy solver
# ----------------------------------------------------------------------

def test_alloy_effective_bandwidth_is_two_thirds():
    dap = DapAlloy(b_ms=B_MS, b_mm=B_MM, efficiency=1.0)
    assert dap.b_ms_eff == pytest.approx(B_MS * 2 / 3)


def test_alloy_ifrm_budget():
    dap = DapAlloy(b_ms=B_MS, b_mm=B_MM)
    # bms_w = 0.4*(2/3)*0.75*64 = 12.8; K = 0.2/0.1125 ~ 7/4.
    s = stats(a_ms=20, a_mm=2, clean=50)
    t = solve_alloy(s, dap.bms_w, dap.bmm_w, dap.k)
    kf = float(dap.k)
    assert t.n_ifrm == pytest.approx((20 - kf * 2) / (1 + kf))


def test_alloy_no_partitioning_below_bandwidth():
    dap = DapAlloy(b_ms=B_MS, b_mm=B_MM)
    t = solve_alloy(stats(a_ms=5, a_mm=1, clean=50), dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_ifrm == 0
    assert t.n_wt > 0  # spare MM bandwidth still drives write-through


def test_alloy_controller_flow():
    dap = DapAlloy(b_ms=B_MS, b_mm=B_MM)
    dap.note_ms_access(20)
    dap.note_mm_access(1)
    for _ in range(20):
        dap.note_clean_hit()
    assert dap.allow_forced_miss(now=70)
    dap.note_fill_bypass()
    assert dap.decisions["ifrm"] == 1
    assert dap.decisions["fill_bypass"] == 1


def test_alloy_write_through_in_quiet_window():
    dap = DapAlloy(b_ms=B_MS, b_mm=B_MM)
    dap.note_ms_access(5)  # below bms_w: no IFRM, but WT budget exists
    dap.note_mm_access(1)
    assert not dap.allow_forced_miss(now=70)
    assert dap.allow_write_through(now=70)
    assert dap.decisions["wt"] == 1


# ----------------------------------------------------------------------
# eDRAM solver
# ----------------------------------------------------------------------

def edram_stats(ar=0, aw=0, amm=0, rm=0, wm=0, clean=0):
    return EdramWindowStats(a_ms_read=ar, a_ms_write=aw, a_mm=amm,
                            read_misses=rm, writes=wm, clean_hits=clean)


def make_edap():
    # B_MS$-R = B_MS$-W = 51.2 GB/s = 0.2 acc/cyc; B_MM = 0.15.
    return DapEdram(b_ms=0.2, b_mm=B_MM)


def test_edram_read_shortage_uses_ifrm_only():
    dap = make_edap()  # bms_w = 0.2*0.75*64 = 9.6
    s = edram_stats(ar=20, aw=2, amm=1, clean=50)
    t = solve_edram(s, dap.bms_w, dap.bmm_w, dap.k)
    kf = float(dap.k)
    assert t.n_ifrm == pytest.approx((20 - kf * 1) / (1 + kf))
    assert t.n_fwb == 0 and t.n_wb == 0


def test_edram_write_shortage_uses_fwb_then_wb():
    dap = make_edap()
    s = edram_stats(ar=2, aw=20, amm=1, rm=4, wm=12)
    t = solve_edram(s, dap.bms_w, dap.bmm_w, dap.k)
    kf = float(dap.k)
    assert t.n_fwb == pytest.approx(min(20 - kf * 1, 4, 20 - dap.bms_w))
    expected_wb = ((20 - t.n_fwb) - kf * 1) / (1 + kf)
    assert t.n_wb == pytest.approx(min(expected_wb, 12))
    assert t.n_ifrm == 0


def test_edram_dual_shortage_solves_simultaneously():
    dap = make_edap()
    s = edram_stats(ar=20, aw=20, amm=1, rm=4, wm=20, clean=50)
    t = solve_edram(s, dap.bms_w, dap.bmm_w, dap.k)
    kf = float(dap.k)
    aw_adj = 20 - t.n_fwb
    denom = 2 * kf + 1
    assert t.n_wb == pytest.approx(((1 + kf) * aw_adj - kf * 20 - kf * 1) / denom)
    assert t.n_ifrm == pytest.approx(((1 + kf) * 20 - kf * aw_adj - kf * 1) / denom)


def test_edram_no_shortage_no_partitioning():
    dap = make_edap()
    t = solve_edram(edram_stats(ar=3, aw=3, amm=1), dap.bms_w, dap.bmm_w, dap.k)
    assert not t.partitioning_active


@given(
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=200, deadline=None)
def test_edram_solver_invariants(ar, aw, amm, rm, wm, clean):
    dap = make_edap()
    t = solve_edram(edram_stats(ar, aw, amm, rm, wm, clean),
                    dap.bms_w, dap.bmm_w, dap.k)
    assert t.n_fwb >= 0 and t.n_wb >= 0 and t.n_ifrm >= 0
    assert t.n_fwb <= rm + 1e-9
    assert t.n_wb <= wm + 1e-9
    assert t.n_ifrm <= clean + 1e-9


def test_edram_controller_window_cycle():
    dap = make_edap()
    dap.note_ms_read(20)
    dap.note_mm_access(1)
    for _ in range(20):
        dap.note_clean_hit()
    assert dap.allow_forced_miss(now=70)
    assert not dap.allow_fill_bypass(now=70)
