"""Tests for the footprint predictor."""

from repro.cache.footprint import FootprintPredictor


def test_unknown_sector_predicts_nothing():
    fp = FootprintPredictor()
    assert fp.predict(42, demand_block=0) == 0


def test_record_and_predict_excludes_demand_block():
    fp = FootprintPredictor()
    fp.record(7, touched_mask=0b1011)
    assert fp.predict(7, demand_block=0) == 0b1010
    assert fp.predict(7, demand_block=3) == 0b0011


def test_empty_masks_are_not_recorded():
    fp = FootprintPredictor()
    fp.record(7, touched_mask=0)
    assert len(fp) == 0


def test_fifo_eviction():
    fp = FootprintPredictor(capacity=2)
    fp.record(1, 0b1)
    fp.record(2, 0b10)
    fp.record(3, 0b100)
    assert fp.predict(1, 63) == 0       # evicted
    assert fp.predict(3, 63) == 0b100


def test_rerecord_refreshes_entry():
    fp = FootprintPredictor(capacity=2)
    fp.record(1, 0b1)
    fp.record(2, 0b10)
    fp.record(1, 0b11)   # refresh: 1 becomes newest
    fp.record(3, 0b100)  # evicts 2, not 1
    assert fp.predict(1, 63) == 0b11
    assert fp.predict(2, 63) == 0
