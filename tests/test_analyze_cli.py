"""``repro-analyze`` CLI smoke tests: report/compare/bench subcommands,
exit codes, and the crash-safety path of the trace writer."""

import json
from dataclasses import replace

import pytest

from repro.experiments.cellcache import CellProfile, ExecStats
from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.hierarchy.system import System
from repro.obs.bench import build_bench_record, write_bench
from repro.obs.cli import main
from repro.obs.telemetry import TelemetryConfig
from repro.obs.trace import TraceWriter, iter_trace, write_manifest
from repro.workloads.mixes import rate_mix

BW = "cache=102.4,mm=38.4"


def write_run(root, stem, gbps_pairs, policy="dap"):
    with TraceWriter(root / f"{stem}.trace.jsonl") as writer:
        writer.write_meta(stem, ["cache.gbps", "mm.gbps"], 1000)
        for i, (cache, mm) in enumerate(gbps_pairs):
            writer.write_sample(1000 * (i + 1),
                                {"cache.gbps": cache, "mm.gbps": mm})
    write_manifest(root / f"{stem}.manifest.json", {
        "schema": 1, "label": stem, "scale": "smoke", "policy": policy,
        "cycles": 1000 * len(gbps_pairs), "events": 5000,
        "wall_seconds": 0.5, "config": {"policy": policy},
        "git_sha": None, "telemetry": None,
    })


def bench_record(rate):
    stats = ExecStats(total=1, executed=1)
    stats.profile = [CellProfile(label="c", wall=1_000_000 / rate,
                                 events=1_000_000)]
    return build_bench_record("cli-test", {"fig06": stats}, scale="smoke",
                              created_unix=1_700_000_000.0)


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

def test_report_markdown_to_stdout(tmp_path, capsys):
    write_run(tmp_path, "mcf_dap", [(72.0, 28.0)] * 4)
    assert main(["report", str(tmp_path), "--bandwidths", BW]) == 0
    out = capsys.readouterr().out
    assert "Access partitioning" in out
    assert "0.7273" in out  # optimal_fractions([102.4, 38.4])[0]
    assert "mcf_dap" in out


def test_report_csv_to_file(tmp_path, capsys):
    write_run(tmp_path, "run", [(70.0, 30.0)] * 3)
    out_file = tmp_path / "out" / "report.csv"
    assert main(["report", str(tmp_path), "--format", "csv",
                 "--out", str(out_file), "--bandwidths", BW]) == 0
    rows = out_file.read_text().strip().splitlines()
    assert rows[0].startswith("cycle,")
    assert len(rows) == 1 + 3  # header + one row per window


def test_report_missing_path_exits_2(capsys):
    assert main(["report", "/nonexistent/trace.jsonl"]) == 2
    assert "error:" in capsys.readouterr().err


def test_report_bad_bandwidths_exits_2(tmp_path, capsys):
    write_run(tmp_path, "run", [(1.0, 1.0)])
    assert main(["report", str(tmp_path), "--bandwidths", "junk"]) == 2


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------

def test_compare_identical_dirs_exit_0(tmp_path, capsys):
    a, b = tmp_path / "a", tmp_path / "b"
    for d in (a, b):
        write_run(d, "mcf_dap", [(72.0, 28.0)] * 4)
    assert main(["compare", str(a), str(b)]) == 0
    assert "overall: ok" in capsys.readouterr().out


def test_compare_regression_exit_1_and_no_fail(tmp_path, capsys):
    a, b = tmp_path / "a", tmp_path / "b"
    write_run(a, "run", [(70.0, 30.0)] * 4)
    # Candidate simulates 2x the cycles: the cycles gate must trip.
    write_run(b, "run", [(70.0, 30.0)] * 8)
    assert main(["compare", str(a), str(b)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    assert main(["compare", str(a), str(b), "--no-fail"]) == 0
    # A loose explicit override un-trips the gate.
    assert main(["compare", str(a), str(b), "--threshold",
                 "cycles=2.0"]) == 0


def test_compare_single_files(tmp_path, capsys):
    write_run(tmp_path, "a", [(70.0, 30.0)] * 3)
    write_run(tmp_path, "b", [(70.0, 30.0)] * 3)
    assert main(["compare", str(tmp_path / "a.trace.jsonl"),
                 str(tmp_path / "b.trace.jsonl")]) == 0
    assert "verdict: ok" in capsys.readouterr().out


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------

def test_bench_validate_only(tmp_path, capsys):
    path = tmp_path / "bench.json"
    write_bench(path, bench_record(100_000.0))
    assert main(["bench", str(path)]) == 0
    assert "bench record ok" in capsys.readouterr().out


def test_bench_compare_regression_exit_codes(tmp_path, capsys):
    prev, cur = tmp_path / "BENCH_1.json", tmp_path / "current.json"
    write_bench(prev, bench_record(100_000.0))
    write_bench(cur, bench_record(10_000.0))  # -90%
    assert main(["bench", str(cur), "--against", str(prev)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    assert main(["bench", str(cur), "--against", str(prev),
                 "--no-fail"]) == 0
    assert main(["bench", str(cur), "--against", str(prev),
                 "--threshold", "0.95"]) == 0


def test_bench_repo_discovery(tmp_path, capsys):
    cur = tmp_path / "cur.json"
    write_bench(cur, bench_record(100_000.0))
    assert main(["bench", str(cur), "--repo", str(tmp_path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out
    write_bench(tmp_path / "BENCH_2.json", bench_record(90_000.0))
    assert main(["bench", str(cur), "--repo", str(tmp_path)]) == 0
    assert "BENCH_2.json" in capsys.readouterr().out


def test_bench_invalid_record_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 1}))
    assert main(["bench", str(bad)]) == 2


# ----------------------------------------------------------------------
# Crash safety: traces must survive a run that dies mid-simulation
# ----------------------------------------------------------------------

def test_trace_writer_flushes_before_close(tmp_path):
    path = tmp_path / "t.trace.jsonl"
    writer = TraceWriter(path, flush_every=4)
    writer.write_meta("t", ["mm.gbps"], 100)
    for i in range(8):
        writer.write_sample(100 * (i + 1), {"mm.gbps": 1.0})
    # Never closed — but the periodic flush makes records visible.
    visible = list(iter_trace(path))
    assert len(visible) >= 5  # meta + at least the first flush batch
    writer.close()
    assert len(list(iter_trace(path))) == 9


def test_run_mix_closes_trace_on_crash(tmp_path, monkeypatch):
    """A cell that dies mid-run must still leave a readable trace."""
    scale = replace(SMOKE, name="smoke", refs_per_core=2_000)
    config = scaled_config(scale, policy="dap")

    real_run = System.run

    def exploding_run(self):
        real_run(self)
        raise RuntimeError("simulated crash after the run loop")

    monkeypatch.setattr(System, "run", exploding_run)
    telemetry = TelemetryConfig(probe_interval=500, trace_dir=str(tmp_path))
    with pytest.raises(RuntimeError):
        run_mix(rate_mix("mcf"), config, scale, label="crash",
                telemetry=telemetry)
    (trace_path,) = tmp_path.rglob("*.trace.jsonl")
    records = list(iter_trace(trace_path))
    kinds = {r["t"] for r in records}
    assert "meta" in kinds and "sample" in kinds
