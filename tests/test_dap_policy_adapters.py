"""Tests for the DAP policy adapters (policy <-> engine wiring)."""

import pytest

from repro.core.dap_sectored import SectoredTargets
from repro.policies.base import BaselinePolicy, SteeringPolicy
from repro.policies.dap import (
    DapAlloyPolicy,
    DapEdramPolicy,
    DapSectoredPolicy,
)


def make_sectored(**kwargs):
    return DapSectoredPolicy(b_ms=0.4, b_mm=0.15, window=10**9, **kwargs)


def test_baseline_policy_never_partitions():
    policy = BaselinePolicy()
    assert not policy.bypass_fill(0, 1)
    assert not policy.bypass_write(0, 1)
    assert not policy.force_read_miss(0, 1)
    assert not policy.speculative_read(0, 1)
    assert not policy.write_through(0, 1)
    assert not policy.steer_clean_read(0, 1)
    # Recording hooks are harmless no-ops.
    policy.note_ms_access()
    policy.note_mm_access()
    policy.note_read_miss()
    policy.note_write()
    policy.note_clean_hit()
    assert policy.describe() == "baseline"


def test_steering_policy_defaults_are_inherited():
    class Custom(SteeringPolicy):
        name = "custom"

    policy = Custom()
    assert not policy.bypass_fill(0, 1)
    assert policy.describe() == "custom"


def test_sectored_adapter_delegates_notes_to_engine():
    policy = make_sectored()
    policy.note_ms_access(3)
    policy.note_mm_access(2)
    policy.note_read_miss()
    policy.note_write()
    policy.note_clean_hit()
    stats = policy.engine.stats
    assert stats.a_ms == 3
    assert stats.a_mm == 2
    assert stats.read_misses == 1
    assert stats.writes == 1
    assert stats.clean_hits == 1


def test_sectored_adapter_decisions_consume_engine_credits():
    policy = make_sectored()
    policy.engine.load_targets(SectoredTargets(1, 1, 1, 1))
    assert policy.bypass_fill(0, 1)
    assert not policy.bypass_fill(0, 2)       # exhausted
    assert policy.bypass_write(0, 3)
    assert policy.force_read_miss(0, 4)
    assert policy.speculative_read(0, 5)
    assert policy.describe().startswith("dap(")


def test_sectored_disable_flags():
    policy = make_sectored(enable_ifrm=False, enable_wb=False)
    policy.engine.load_targets(SectoredTargets(5, 5, 5, 5))
    assert not policy.force_read_miss(0, 1)
    assert not policy.bypass_write(0, 1)
    assert policy.bypass_fill(0, 1)  # FWB unaffected


def test_sfrm_disabled_adapter():
    policy = DapSectoredPolicy(b_ms=0.4, b_mm=0.15, window=10**9,
                               enable_sfrm=False)
    policy.engine.load_targets(SectoredTargets(0, 0, 0, 5))
    assert not policy.speculative_read(0, 1)


def test_alloy_adapter_round_trip():
    policy = DapAlloyPolicy(b_ms=0.4, b_mm=0.15, window=10**9)
    policy.note_ms_access(20)
    policy.note_mm_access(1)
    policy.note_clean_hit()
    assert policy.engine.stats.a_ms == 20
    policy.engine._ifrm.load(5 * float(policy.engine._cost))
    policy.engine._wt.load(2)
    assert policy.force_read_miss(0, 1)
    assert policy.write_through(0, 1)


def test_edram_adapter_round_trip():
    policy = DapEdramPolicy(b_ms=0.2, b_mm=0.15, window=10**9)
    policy.note_ms_read(4)
    policy.note_ms_write(3)
    policy.note_mm_access(2)
    policy.note_read_miss()
    policy.note_write()
    policy.note_clean_hit()
    stats = policy.engine.stats
    assert (stats.a_ms_read, stats.a_ms_write, stats.a_mm) == (4, 3, 2)
    policy.engine._fwb.load(1)
    policy.engine._wb.load(float(policy.engine._cost))
    policy.engine._ifrm.load(float(policy.engine._cost))
    assert policy.bypass_fill(0, 1)
    assert policy.bypass_write(0, 1)
    assert policy.force_read_miss(0, 1)


def test_policy_bind_sets_controller():
    policy = make_sectored()

    class FakeController:
        pass

    ctrl = FakeController()
    policy.bind(ctrl)
    assert policy.controller is ctrl


@pytest.mark.parametrize("policy_name", [
    "baseline", "dap", "dap-ta", "dap-fwb", "dap-fwb-wb", "dap-no-sfrm",
    "sbd", "sbd-wt", "batman",
])
def test_policy_factory_produces_each_policy(policy_name):
    from repro.engine import Simulator
    from repro.hierarchy.system import SystemConfig, _build_msc

    config = SystemConfig(policy=policy_name,
                          msc_capacity_bytes=(4 << 30) // 64)
    msc = _build_msc(Simulator(), config)
    assert msc.policy is not None
    assert msc.policy.controller is msc


def test_bear_factory_on_alloy():
    from repro.engine import Simulator
    from repro.hierarchy.system import SystemConfig, _build_msc

    config = SystemConfig(policy="bear", msc_kind="alloy",
                          msc_capacity_bytes=(4 << 30) // 64)
    msc = _build_msc(Simulator(), config)
    assert msc.policy.name == "bear"
