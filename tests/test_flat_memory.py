"""Tests for the OS-visible flat-memory extension."""

import pytest

from repro.engine import Simulator
from repro.errors import ConfigError
from repro.flat.controller import FlatMemoryController
from repro.flat.placement import (
    PAGE_LINES,
    AdaptiveMigrationPlacement,
    BandwidthInterleavePlacement,
    FirstTouchPlacement,
    Tier,
    make_placement,
)
from repro.mem.configs import ddr4_2400, hbm_102
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind


def make_controller(placement):
    sim = Simulator()
    fast = MemoryDevice(sim, hbm_102())
    slow = MemoryDevice(sim, ddr4_2400())
    return sim, FlatMemoryController(sim, fast, slow, placement)


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------

def test_first_touch_fills_then_spills():
    p = FirstTouchPlacement(fast_capacity_pages=2)
    assert p.tier_of(0 * PAGE_LINES) is Tier.FAST
    assert p.tier_of(1 * PAGE_LINES) is Tier.FAST
    assert p.tier_of(2 * PAGE_LINES) is Tier.SLOW  # full
    assert p.tier_of(0 * PAGE_LINES + 5) is Tier.FAST  # sticky


def test_interleave_matches_bandwidth_ratio():
    p = BandwidthInterleavePlacement(fast_capacity_pages=10_000,
                                     b_fast=102.4, b_slow=38.4)
    fast = sum(p.tier_of(page * PAGE_LINES) is Tier.FAST
               for page in range(4000))
    assert abs(fast / 4000 - 102.4 / 140.8) < 0.03


def test_interleave_is_deterministic_and_sticky():
    p = BandwidthInterleavePlacement(fast_capacity_pages=100,
                                     b_fast=100, b_slow=50)
    tiers = [p.tier_of(page * PAGE_LINES) for page in range(50)]
    tiers_again = [p.tier_of(page * PAGE_LINES) for page in range(50)]
    assert tiers == tiers_again


def test_adaptive_demotes_when_fast_tier_hot():
    p = AdaptiveMigrationPlacement(fast_capacity_pages=1000, b_fast=100,
                                   b_slow=50, epoch_cycles=10)
    # All traffic to fast pages -> fraction 1.0 >> target 2/3.
    for page in range(20):
        line = page * PAGE_LINES
        tier = p.tier_of(line)
        for _ in range(20):
            p.observe(line, tier)
    moves = p.epoch(now=100)
    assert moves
    assert all(tier is Tier.SLOW for _, tier in moves)
    # Demoted pages do not bounce straight back on next touch.
    demoted_page, _ = moves[0]
    assert p.tier_of(demoted_page * PAGE_LINES) is Tier.SLOW


def test_adaptive_settles_after_a_batch():
    p = AdaptiveMigrationPlacement(fast_capacity_pages=1000, b_fast=100,
                                   b_slow=50, epoch_cycles=10)
    for page in range(20):
        tier = p.tier_of(page * PAGE_LINES)
        for _ in range(20):
            p.observe(page * PAGE_LINES, tier)
    assert p.epoch(now=100)
    # Next epochs are settle epochs: no migrations even with hot traffic.
    for page in range(20):
        p.observe(page * PAGE_LINES, Tier.FAST)
    assert p.epoch(now=200) == []


def test_make_placement_factory():
    assert make_placement("first-touch", 10, 100, 50).name == "first-touch"
    assert make_placement("adaptive", 10, 100, 50).name == "adaptive"
    with pytest.raises(ConfigError):
        make_placement("oracle", 10, 100, 50)
    with pytest.raises(ConfigError):
        FirstTouchPlacement(fast_capacity_pages=0)
    with pytest.raises(ConfigError):
        BandwidthInterleavePlacement(10, b_fast=0, b_slow=50)


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------

def test_reads_route_by_placement():
    p = FirstTouchPlacement(fast_capacity_pages=1)
    sim, ctrl = make_controller(p)
    done = []
    ctrl.read(0, core_id=0, callback=lambda t: done.append(t))            # fast
    ctrl.read(5 * PAGE_LINES, core_id=0, callback=lambda t: done.append(t))  # slow
    sim.run()
    assert len(done) == 2
    assert ctrl.fast_dev.total_cas() == 1
    assert ctrl.slow_dev.total_cas() == 1
    assert ctrl.served_hits == 1 and ctrl.served_misses == 1


def test_writes_route_by_placement():
    p = FirstTouchPlacement(fast_capacity_pages=1)
    sim, ctrl = make_controller(p)
    ctrl.write(0, core_id=0)
    ctrl.write(9 * PAGE_LINES, core_id=0)
    sim.run()
    assert ctrl.fast_dev.cas_by_kind().get(AccessKind.WRITEBACK) == 1
    assert ctrl.slow_dev.cas_by_kind().get(AccessKind.WRITEBACK) == 1


def test_migration_charges_page_copy_traffic():
    p = AdaptiveMigrationPlacement(fast_capacity_pages=1000, b_fast=100,
                                   b_slow=50, epoch_cycles=10)
    sim, ctrl = make_controller(p)
    done = []
    # Heat up a few fast pages, then cross an epoch to trigger demotion.
    for page in range(10):
        for _ in range(30):
            ctrl.read(page * PAGE_LINES, core_id=0,
                      callback=lambda t: done.append(t))
    sim.run()
    ctrl.read(0, core_id=0, callback=lambda t: done.append(t))  # epoch hook
    sim.run()
    assert ctrl.migrated_pages >= 1
    # A migrated page costs 64 reads on the source + 64 writes on the dest.
    assert ctrl.fast_dev.cas_by_kind().get(AccessKind.EVICT_READ, 0) >= 64
    assert ctrl.slow_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 64


def test_experiment_shape():
    from repro.experiments.common import SMOKE
    from repro.experiments.ext_flat_memory import run

    result = run(SMOKE)
    rows = {row[0]: row for row in result.rows}
    # First-touch keeps all traffic in the fast tier...
    assert rows["first-touch"][3] == pytest.approx(1.0)
    # ...and delivers less than the Eq. 3 interleave.
    assert rows["bandwidth-interleave"][1] > rows["first-touch"][1]
    # The interleave sits near the optimal traffic fraction.
    assert abs(rows["bandwidth-interleave"][3] - 0.727) < 0.05
    # Adaptive converges: steady-state beats first-touch.
    assert rows["adaptive"][2] > rows["first-touch"][2]
