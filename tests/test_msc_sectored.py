"""Integration tests for the sectored DRAM cache controller."""

from repro.cache.footprint import FootprintPredictor
from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.cache.tag_cache import TagCache
from repro.engine import Simulator
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.mem.configs import ddr4_2400, hbm_102
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind
from repro.policies.dap import DapSectoredPolicy


def make_controller(policy=None, tag_cache=True, footprint=False,
                    capacity=16 << 20):
    sim = Simulator()
    cache_dev = MemoryDevice(sim, hbm_102())
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("l4", capacity, assoc=4, sector_bytes=4096)
    ctrl = SectoredMscController(
        sim, cache_dev, mm_dev, array,
        policy=policy,
        tag_cache=TagCache(entries=1024) if tag_cache else None,
        footprint=FootprintPredictor() if footprint else None,
    )
    return sim, ctrl


def run_read(ctrl, sim, line):
    done = []
    ctrl.read(line, core_id=0, callback=lambda t: done.append(t))
    sim.run()
    assert done, "read never completed"
    return done[0]


def test_read_miss_goes_to_main_memory_and_fills():
    sim, ctrl = make_controller()
    run_read(ctrl, sim, 100)
    assert ctrl.mm_dev.cas_by_kind()[AccessKind.DEMAND_READ] == 1
    assert ctrl.array.probe(100) is SectorProbe.HIT  # fill installed
    kinds = ctrl.cache_dev.cas_by_kind()
    assert kinds.get(AccessKind.FILL_WRITE) == 1
    assert ctrl.served_misses == 1


def test_read_hit_served_by_cache():
    sim, ctrl = make_controller()
    ctrl.warm_line(100)
    run_read(ctrl, sim, 100)
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1
    assert AccessKind.DEMAND_READ not in ctrl.mm_dev.cas_by_kind()
    assert ctrl.served_hits == 1


def test_tag_cache_miss_costs_metadata_read():
    sim, ctrl = make_controller()
    ctrl.warm_line(100)
    run_read(ctrl, sim, 100)  # first access: tag-cache miss
    assert ctrl.stats.meta_reads == 1
    run_read(ctrl, sim, 101)  # same sector: tag-cache hit now
    assert ctrl.stats.meta_reads == 1


def test_no_tag_cache_every_access_reads_metadata():
    sim, ctrl = make_controller(tag_cache=False)
    ctrl.warm_line(100)
    run_read(ctrl, sim, 100)
    run_read(ctrl, sim, 101)
    assert ctrl.stats.meta_reads == 2


def test_write_installs_dirty_block():
    sim, ctrl = make_controller()
    ctrl.write(200, core_id=0)
    sim.run()
    assert ctrl.array.is_block_dirty(200)
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.L4_WRITE) == 1


def test_sector_eviction_writes_dirty_victims_to_mm():
    sim, ctrl = make_controller(capacity=2 * 4 * 4096)  # 2 sets x 4 ways
    # Fill all 4 ways of set 0 with dirty blocks.
    sectors_in_set0 = [0, 2, 4, 6]
    for s in sectors_in_set0:
        ctrl.write(s * 64, core_id=0)
    sim.run()
    # A 5th sector in set 0 evicts a victim with one dirty block.
    ctrl.write(8 * 64, core_id=0)
    sim.run()
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 1
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.EVICT_READ, 0) >= 1
    assert ctrl.stats.victim_dirty_lines >= 1


def test_footprint_prefetch_on_reallocation():
    sim, ctrl = make_controller(capacity=2 * 4 * 4096, footprint=True)
    # Touch several blocks of sector 0, then evict it, then bring it back.
    for block in (0, 1, 2, 3):
        run_read(ctrl, sim, block)
    for s in (2, 4, 6, 8):  # fill set 0 and force eviction of sector 0
        ctrl.write(s * 64, core_id=0)
    sim.run()
    assert not ctrl.array.sector_present(0)
    run_read(ctrl, sim, 0)  # reallocation triggers footprint prefetch
    assert ctrl.stats.footprint_prefetches >= 3
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.FOOTPRINT_READ, 0) >= 3


def dap_policy_with_targets(**targets):
    """A DAP policy with one giant window and pre-loaded credits, so the
    controller-plumbing tests are independent of window timing (the
    window logic itself is covered in test_dap_solvers)."""
    from repro.core.dap_sectored import SectoredTargets

    policy = DapSectoredPolicy(b_ms=0.4, b_mm=0.15, window=10**9)
    policy.engine.load_targets(
        SectoredTargets(
            n_fwb=targets.get("fwb", 0),
            n_wb=targets.get("wb", 0),
            n_ifrm=targets.get("ifrm", 0),
            n_sfrm=targets.get("sfrm", 0),
        )
    )
    return policy


def test_dap_fill_bypass_drops_fill():
    policy = dap_policy_with_targets(fwb=5)
    sim, ctrl = make_controller(policy=policy)
    run_read(ctrl, sim, 100)
    assert ctrl.stats.fwb_applied == 1
    assert ctrl.array.probe(100) is SectorProbe.SECTOR_MISS  # fill dropped


def test_dap_write_bypass_steers_to_mm():
    policy = dap_policy_with_targets(wb=5)
    sim, ctrl = make_controller(policy=policy)
    ctrl.write(300, core_id=0)
    sim.run()
    assert ctrl.stats.wb_applied == 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK) == 1
    assert ctrl.array.probe(300) is SectorProbe.SECTOR_MISS


def test_ifrm_serves_clean_hit_from_mm():
    policy = dap_policy_with_targets(ifrm=5)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(100)              # clean resident block
    ctrl.warm_line(101)
    # Prime the tag cache so the read takes the fast resolved path.
    run_read(ctrl, sim, 101)
    before = ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ, 0)
    run_read(ctrl, sim, 100)
    after = ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ, 0)
    assert ctrl.stats.ifrm_applied >= 1
    assert after == before + 1
    assert ctrl.array.probe(100) is SectorProbe.HIT  # block stays resident


def test_sfrm_races_metadata_fetch():
    policy = DapSectoredPolicy(b_ms=0.4, b_mm=0.15)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(100)
    policy.note_ms_access(5)
    policy.note_mm_access(1)
    sim.run(until=70)  # SFRM credits from spare MM bandwidth
    finish = run_read(ctrl, sim, 100)  # tag-cache miss -> SFRM race
    assert ctrl.stats.sfrm_issued == 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.SPEC_READ) == 1
    assert finish > 0


def test_sfrm_wasted_on_dirty_hit():
    policy = DapSectoredPolicy(b_ms=0.4, b_mm=0.15)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(100, dirty=True)
    policy.note_ms_access(5)
    policy.note_mm_access(1)
    sim.run(until=70)
    run_read(ctrl, sim, 100)
    assert ctrl.stats.sfrm_issued == 1
    assert ctrl.stats.sfrm_wasted == 1
    # Data served by the cache despite the speculative MM read.
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1


def test_read_latency_accounting():
    sim, ctrl = make_controller()
    ctrl.warm_line(100)
    run_read(ctrl, sim, 100)
    assert ctrl.stats.reads_done == 1
    assert ctrl.stats.avg_read_latency() > 0


def test_mm_cas_fraction():
    sim, ctrl = make_controller()
    run_read(ctrl, sim, 100)       # miss: MM read + fill + meta
    ctrl.warm_line(200)
    run_read(ctrl, sim, 200)       # hit
    frac = ctrl.mm_cas_fraction()
    assert 0 < frac < 1
