"""The HTTP surface, driven in-process through the ASGI test client.

Covers the acceptance path end-to-end: submit over HTTP, watch progress
on the SSE stream (at least one cell event before completion), fetch
the result, and observe a repeat submission served entirely from the
cell cache.
"""

import time

import pytest

from repro import api
from repro.obs.metrics import parse_exposition
from repro.obs.spans import make_traceparent, parse_traceparent
from repro.service.app import ServiceApp, route_template
from repro.service.jobstore import JobStore
from repro.service.testing import TestClient, parse_sse
from repro.service.worker import WorkerPool

REQUEST_BODY = {"experiment": "fig06", "scale": "smoke",
                "workloads": ["mcf"]}


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3", backoff_base=0.02)


@pytest.fixture
def pool(store, shared_cache_dir):
    pool = WorkerPool(store, workers=1,
                      cache=api.default_cache(shared_cache_dir),
                      poll_seconds=0.02)
    yield pool  # tests that need workers call pool.start()
    pool.stop(timeout=120)


@pytest.fixture
def client(store, pool):
    return TestClient(ServiceApp(store, pool=pool))


def _poll_terminal(client, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = client.get(f"/jobs/{job_id}").json()
        if job["terminal"]:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s")


# ----------------------------------------------------------------------
# Liveness and error surfaces
# ----------------------------------------------------------------------

def test_healthz_reports_queue_and_workers(client, pool):
    response = client.get("/healthz")
    assert response.status == 200
    assert response.headers["content-type"] == "application/json"
    body = response.json()
    assert body["ok"] is True
    assert body["queue_depth"] == 0
    assert body["workers"] == 0  # pool not started

    pool.start()
    assert client.get("/healthz").json()["workers"] == 1


def test_healthz_liveness_and_readiness_split(client, pool):
    live = client.get("/healthz/live")
    assert live.status == 200
    assert live.json() == {"ok": True}

    ready = client.get("/healthz/ready")
    assert ready.status == 200  # pool never started: nothing is dead
    body = ready.json()
    assert body["ok"] is True
    assert body["queue_depth"] == 0
    assert body["workers"] == 0
    assert "last_orphan_recovery" in body

    pool.start()
    assert client.get("/healthz/ready").json()["workers"] == 1


def test_readiness_503_when_started_pool_has_no_live_workers(client, pool):
    pool.start()
    assert client.get("/healthz/ready").status == 200
    # Simulate every worker thread dying without the pool noticing.
    pool._stop.set()
    for thread in pool._threads:
        thread.join(timeout=30)
    response = client.get("/healthz/ready")
    assert response.status == 503
    assert response.json()["ok"] is False
    # Liveness is unaffected: the process still answers.
    assert client.get("/healthz/live").status == 200


def test_readiness_reports_orphan_recovery(tmp_path, shared_cache_dir):
    store = JobStore(tmp_path / "jobs.sqlite3")
    job = store.submit(api.ExperimentRequest(experiment="fig06",
                                             scale="smoke",
                                             workloads=("mcf",)))
    assert store.claim("dead-worker").id == job.id
    store.recover_orphans()
    client = TestClient(ServiceApp(store))
    recovery = client.get("/healthz/ready").json()["last_orphan_recovery"]
    assert recovery["requeued"] == 1
    assert recovery["failed"] == 0
    assert recovery["at"] > 0


def test_stats_exposes_service_counters(client):
    stats = client.get("/stats").json()
    assert stats["jobs"] == {"queued": 0, "running": 0, "succeeded": 0,
                             "failed": 0, "cancelled": 0}
    for key in ("queue_depth", "cells_executed", "cells_cached",
                "cache_hit_ratio", "events_simulated", "events_per_sec",
                "workers", "jobs_run_by_this_process"):
        assert key in stats
    for key in ("jobs_submitted", "jobs_deduped", "job_retries",
                "orphans_requeued", "orphans_failed", "torn_trace_lines",
                "sse_frames"):
        assert key in stats["counters"]


# ----------------------------------------------------------------------
# /metrics and request instrumentation
# ----------------------------------------------------------------------

def test_metrics_endpoint_serves_valid_exposition(client):
    client.get("/stats")  # guarantee at least one instrumented request
    response = client.get("/metrics")
    assert response.status == 200
    assert response.headers["content-type"].startswith(
        "text/plain; version=0.0.4")
    samples = parse_exposition(response.text)  # raises if malformed
    names = {s.name for s in samples}
    assert "repro_http_requests_total" in names
    assert "repro_queue_depth" in names
    assert "repro_http_request_seconds_bucket" in names


def test_http_middleware_counts_by_route_template(client):
    def requests_for(route, **labels):
        return sum(
            s.value for s in parse_exposition(client.get("/metrics").text)
            if s.name == "repro_http_requests_total"
            and s.labels.get("route") == route
            and all(s.labels.get(k) == v for k, v in labels.items()))

    before = requests_for("/jobs/{id}", status="404")
    client.get("/jobs/no-such-job")
    client.get("/jobs/also-missing")
    assert requests_for("/jobs/{id}", status="404") == before + 2
    # Unknown paths collapse into one label value: bounded cardinality.
    unmatched = requests_for("(unmatched)")
    client.get("/totally/unknown/route")
    assert requests_for("(unmatched)") == unmatched + 1


def test_metrics_gauges_track_queue_depth(client):
    job = client.post("/jobs", json_body=REQUEST_BODY).json()
    samples = parse_exposition(client.get("/metrics").text)
    depth = [s.value for s in samples if s.name == "repro_queue_depth"]
    queued = [s.value for s in samples if s.name == "repro_jobs_by_state"
              and s.labels.get("state") == "queued"]
    assert depth == [1.0]
    assert queued == [1.0]
    client.post(f"/jobs/{job['id']}/cancel")
    samples = parse_exposition(client.get("/metrics").text)
    assert [s.value for s in samples
            if s.name == "repro_queue_depth"] == [0.0]


def test_route_template_bounds_cardinality():
    assert route_template("/jobs") == "/jobs"
    assert route_template("/jobs/abc123") == "/jobs/{id}"
    assert route_template("/jobs/abc123/events") == "/jobs/{id}/events"
    assert route_template("/jobs/abc123/bogus") == "(unmatched)"
    assert route_template("/healthz/ready") == "/healthz/ready"
    assert route_template("/anything/else") == "(unmatched)"


# ----------------------------------------------------------------------
# Trace context at the HTTP edge
# ----------------------------------------------------------------------

def test_submit_mints_traceparent_when_client_sends_none(client):
    response = client.post("/jobs", json_body=REQUEST_BODY)
    assert response.status == 202
    echoed = response.headers["traceparent"]
    assert parse_traceparent(echoed) is not None
    job = response.json()
    assert job["traceparent"] == echoed
    # Persisted on the job row: a later GET returns the same id.
    assert client.get(f"/jobs/{job['id']}").json()["traceparent"] == echoed


def test_submit_adopts_valid_client_traceparent(client):
    mine = make_traceparent()
    response = client.post("/jobs", json_body=REQUEST_BODY,
                           headers={"traceparent": mine})
    assert response.headers["traceparent"] == mine
    assert response.json()["traceparent"] == mine


def test_submit_replaces_invalid_traceparent(client):
    bogus = "00-" + "0" * 32 + "-" + "0" * 16 + "-01"
    response = client.post("/jobs", json_body=REQUEST_BODY,
                           headers={"traceparent": bogus})
    minted = response.headers["traceparent"]
    assert minted != bogus
    assert parse_traceparent(minted) is not None


@pytest.mark.parametrize("body, message", [
    ({"experiment": "fig99"}, "unknown experiment"),
    ({"experiment": "fig06", "bogus": 1}, "unknown request field"),
    ({"scale": "smoke"}, "experiment"),
])
def test_submit_rejects_bad_requests(client, body, message):
    response = client.post("/jobs", json_body=body)
    assert response.status == 400
    assert message in response.json()["error"]


def test_submit_rejects_malformed_json(client, store):
    assert client.request("POST", "/jobs",
                          json_body=None).status == 400  # empty body
    assert client.post("/jobs", json_body=[1, 2]).status == 400
    assert store.list_jobs() == []


def test_unknown_routes_and_jobs_are_404(client):
    assert client.get("/nope").status == 404
    assert client.get("/jobs/missing").status == 404
    assert client.get("/jobs/missing/events").status == 404
    assert client.post("/jobs/missing/cancel").status == 404


def test_result_of_unfinished_job_is_409(client):
    job = client.post("/jobs", json_body=REQUEST_BODY).json()
    response = client.get(f"/jobs/{job['id']}/result")
    assert response.status == 409
    assert response.json()["job"]["state"] == "queued"


def test_cancel_endpoint_cancels_queued_job(client):
    job = client.post("/jobs", json_body=REQUEST_BODY).json()
    response = client.post(f"/jobs/{job['id']}/cancel")
    assert response.status == 202
    assert response.json()["state"] == "cancelled"


# ----------------------------------------------------------------------
# The acceptance path
# ----------------------------------------------------------------------

def test_submit_poll_result_round_trip(client, pool):
    submitted = client.post("/jobs", json_body=REQUEST_BODY)
    assert submitted.status == 202
    job = submitted.json()
    assert job["state"] == "queued"
    assert job["request"]["workloads"] == ["mcf"]

    pool.start()
    done = _poll_terminal(client, job["id"])
    assert done["state"] == "succeeded"
    assert done["done_cells"] == done["total_cells"] == 2

    response = client.get(f"/jobs/{job['id']}/result")
    assert response.status == 200
    result = response.json()["result"]
    assert result["headers"] == ["workload", "norm_ws_dap",
                                 "norm_read_latency"]
    assert [row[0] for row in result["rows"]] == ["mcf", "GMEAN"]

    listed = client.get("/jobs?state=succeeded").json()["jobs"]
    assert job["id"] in [j["id"] for j in listed]


def test_submit_round_trips_backend_and_profile(client):
    """`backend` and `profile` travel the service schema untouched and —
    being execution knobs, not simulation inputs — leave the request
    fingerprint alone, so jobs dedupe across backends."""
    plain = client.post("/jobs", json_body=REQUEST_BODY).json()
    body = dict(REQUEST_BODY, backend="auto", profile=True)
    job = client.post("/jobs", json_body=body).json()
    assert job["request"]["backend"] == "auto"
    assert job["request"]["profile"] is True
    assert job["fingerprint"] == plain["fingerprint"]

    bad = client.post("/jobs", json_body=dict(REQUEST_BODY, backend="rust"))
    assert bad.status == 400
    assert "unknown backend" in bad.json()["error"]


def test_sse_replay_has_cell_progress_before_done(client, pool):
    job = client.post("/jobs", json_body=REQUEST_BODY).json()
    pool.start()
    _poll_terminal(client, job["id"])

    # A finished job's stream replays every persisted event, then the
    # terminal frame — same sequence a live subscriber saw.
    response = client.get(f"/jobs/{job['id']}/events")
    assert response.status == 200
    assert response.headers["content-type"] == "text/event-stream"
    events = parse_sse(response.text)

    kinds = [e["data"].get("t") for e in events[:-1]]
    assert kinds.count("cell") == 2
    assert events[-1].get("event") == "done"
    assert events[-1]["data"]["state"] == "succeeded"
    # ... and at least one progress event precedes completion.
    states = [e["data"].get("state") for e in events]
    assert kinds.index("cell") < states.index("succeeded")

    # Resumable: replay from the last cell event's id onward.
    last_cell_id = [e["id"] for e in events
                    if e["data"].get("t") == "cell"][-1]
    tail = parse_sse(client.get(
        f"/jobs/{job['id']}/events",
        headers={"Last-Event-ID": last_cell_id}).text)
    assert all(e["data"].get("t") != "cell"
               for e in tail if "id" in e)


def test_live_sse_streams_progress_while_job_runs(client, pool,
                                                  shared_cache_dir):
    api.run_experiment(api.ExperimentRequest.from_dict(REQUEST_BODY),
                       cache=shared_cache_dir)  # warm: stream stays fast
    job = client.post("/jobs", json_body=REQUEST_BODY).json()
    with client.stream(f"/jobs/{job['id']}/events", timeout=120) as stream:
        pool.start()  # the subscriber is watching before work begins
        events = stream.collect(timeout=120)

    assert events[-1].get("event") == "done"
    assert events[-1]["data"]["terminal"] is True
    cell_events = [e for e in events if e["data"].get("t") == "cell"]
    assert cell_events, "no progress event arrived before completion"
    assert cell_events[-1]["data"]["done"] == 2


def test_second_identical_submission_is_served_from_cache(client, pool):
    pool.start()
    first = client.post("/jobs", json_body=REQUEST_BODY).json()
    _poll_terminal(client, first["id"])

    second = client.post("/jobs", json_body=REQUEST_BODY).json()
    assert second["fingerprint"] == first["fingerprint"]
    done = _poll_terminal(client, second["id"])
    assert done["state"] == "succeeded"
    assert done["executed_cells"] == 0  # zero new simulation
    assert done["cached_cells"] == 2

    stats = client.get("/stats").json()
    assert stats["cells_cached"] >= 2
