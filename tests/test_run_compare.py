"""The run comparator: threshold pass/fail logic, manifest diffing,
and directory-level comparison with regression exit semantics."""

import pytest

from repro.errors import ConfigError
from repro.obs.analysis import analyze_trace
from repro.obs.compare import (
    DEFAULT_THRESHOLDS,
    MetricSpec,
    compare_dirs,
    compare_metrics,
    compare_runs,
    diff_manifests,
    render_comparison,
    render_dir_comparison,
)
from repro.obs.trace import TraceWriter, write_manifest

BW = {"cache": 102.4, "mm": 38.4}


def write_run(root, stem, gbps_pairs, cycles=10_000, policy="dap"):
    """One synthetic traced run: trace + sidecar manifest."""
    trace = root / f"{stem}.trace.jsonl"
    with TraceWriter(trace) as writer:
        writer.write_meta(stem, ["cache.gbps", "mm.gbps"], 1000)
        for i, (cache, mm) in enumerate(gbps_pairs):
            writer.write_sample(1000 * (i + 1),
                                {"cache.gbps": cache, "mm.gbps": mm})
    write_manifest(root / f"{stem}.manifest.json", {
        "schema": 1, "label": stem, "scale": "smoke", "policy": policy,
        "policy_describe": policy, "cycles": cycles, "events": cycles * 3,
        "wall_seconds": 1.0, "events_per_sec": cycles * 3.0,
        "config": {"policy": policy, "num_cores": 8},
        "git_sha": "deadbeef", "telemetry": None,
    })
    return trace


# ----------------------------------------------------------------------
# Metric threshold logic
# ----------------------------------------------------------------------

def test_lower_is_better_regression():
    deltas = compare_metrics({"cycles": 1000.0}, {"cycles": 1100.0})
    (delta,) = [d for d in deltas if d.name == "cycles"]
    assert delta.regressed  # cycles went up: worse
    assert delta.rel_change == pytest.approx(0.10)

    deltas = compare_metrics({"cycles": 1000.0}, {"cycles": 900.0})
    (delta,) = [d for d in deltas if d.name == "cycles"]
    assert not delta.regressed  # improvement is never a regression


def test_higher_is_better_regression():
    base = {"events_per_sec": 100_000.0}
    worse = {"events_per_sec": 40_000.0}   # -60% > default 50% threshold
    (delta,) = compare_metrics(base, worse)
    assert delta.regressed
    (delta,) = compare_metrics(base, {"events_per_sec": 80_000.0})
    assert not delta.regressed             # -20% within threshold


def test_abs_floor_suppresses_tiny_wobbles():
    # Gap 0.001 -> 0.003 is a 200% relative change but below the 0.02
    # absolute floor, so it must not fail the gate.
    deltas = compare_metrics({"mean_partition_gap": 0.001},
                             {"mean_partition_gap": 0.003})
    assert not deltas[0].regressed
    deltas = compare_metrics({"mean_partition_gap": 0.10},
                             {"mean_partition_gap": 0.20})
    assert deltas[0].regressed


def test_threshold_override_and_informational_metrics():
    base, cand = {"events": 100.0, "cycles": 100.0}, {"events": 1.0,
                                                      "cycles": 104.0}
    deltas = {d.name: d for d in compare_metrics(base, cand)}
    assert not deltas["events"].regressed          # informational
    assert deltas["cycles"].regressed              # default gate: any growth
    loose = {"cycles": MetricSpec(threshold=0.10, higher_is_better=False)}
    deltas = {d.name: d for d in compare_metrics(base, cand, loose)}
    assert not deltas["cycles"].regressed          # +4% within 10%


def test_metric_missing_on_one_side_is_informational():
    deltas = compare_metrics({"grant_rate.fwb": 0.5}, {})
    assert [d.regressed for d in deltas] == [False]
    assert deltas[0].rel_change is None


# ----------------------------------------------------------------------
# Manifest diff
# ----------------------------------------------------------------------

def test_diff_manifests_flags_config_changes_only():
    a = {"policy": "dap", "scale": "smoke", "git_sha": "aaa",
         "wall_seconds": 1.0, "config": {"num_cores": 8, "dap_window": 64}}
    b = {"policy": "dap", "scale": "smoke", "git_sha": "bbb",
         "wall_seconds": 9.0, "config": {"num_cores": 8, "dap_window": 128}}
    diff = diff_manifests(a, b)
    assert diff == {"config.dap_window": (64, 128)}  # volatile keys ignored


def test_diff_manifests_nested_and_missing():
    a = {"config": {"mm_dram": {"name": "DDR4-2400"}}}
    b = {"config": {"mm_dram": {"name": "DDR4-3200"}, "extra": 1}}
    diff = diff_manifests(a, b)
    assert diff["config.mm_dram.name"] == ("DDR4-2400", "DDR4-3200")
    assert diff["config.extra"] == (None, 1)


# ----------------------------------------------------------------------
# Whole-run and directory comparison
# ----------------------------------------------------------------------

def test_compare_runs_flags_partition_regression(tmp_path):
    base = write_run(tmp_path / "a", "mcf_dap",
                     [(72.7, 27.3)] * 4)               # near-optimal
    cand = write_run(tmp_path / "b", "mcf_dap",
                     [(95.0, 5.0)] * 4)                # badly skewed
    result = compare_runs(analyze_trace(base, bandwidths=BW),
                          analyze_trace(cand, bandwidths=BW))
    names = {d.name for d in result.regressions}
    assert "mean_partition_gap" in names
    assert result.regressed
    text = render_comparison(result)
    assert "REGRESSED" in text


def test_compare_identical_runs_is_clean(tmp_path):
    base = write_run(tmp_path / "a", "mcf_dap", [(70.0, 30.0)] * 3)
    cand = write_run(tmp_path / "b", "mcf_dap", [(70.0, 30.0)] * 3)
    result = compare_runs(analyze_trace(base, bandwidths=BW),
                          analyze_trace(cand, bandwidths=BW))
    assert not result.regressed
    assert result.manifest_diff == {}


def test_compare_runs_reports_config_diff(tmp_path):
    base = write_run(tmp_path / "a", "run", [(70.0, 30.0)], policy="baseline")
    cand = write_run(tmp_path / "b", "run", [(70.0, 30.0)], policy="dap")
    result = compare_runs(analyze_trace(base, bandwidths=BW),
                          analyze_trace(cand, bandwidths=BW))
    assert result.manifest_diff["policy"] == ("baseline", "dap")


def test_compare_dirs_matches_stems(tmp_path):
    a_dir, b_dir = tmp_path / "a", tmp_path / "b"
    write_run(a_dir, "shared", [(70.0, 30.0)] * 3)
    write_run(a_dir, "only_a", [(70.0, 30.0)])
    write_run(b_dir, "shared", [(70.0, 30.0)] * 3)
    write_run(b_dir, "only_b", [(70.0, 30.0)])
    result = compare_dirs(a_dir, b_dir)
    assert [run.label for run in result.runs] == ["shared"]
    assert result.only_baseline == ["only_a"]
    assert result.only_candidate == ["only_b"]
    assert not result.regressed
    text = render_dir_comparison(result)
    assert "only in baseline: only_a" in text
    assert "overall: ok" in text


def test_compare_dirs_requires_traces(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    full = tmp_path / "full"
    write_run(full, "r", [(1.0, 1.0)])
    with pytest.raises(ConfigError):
        compare_dirs(empty, full)


def test_default_thresholds_cover_core_metrics():
    for name in ("cycles", "events_per_sec", "mean_partition_gap",
                 "mean_delivered_gbps", "mean_loss_gbps"):
        assert name in DEFAULT_THRESHOLDS
