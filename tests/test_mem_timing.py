"""Unit tests for DRAM timing parameters and device configs."""

import pytest

from repro.errors import ConfigError
from repro.mem.configs import (
    ddr4_2400,
    ddr4_2400_no_io,
    ddr4_3200,
    edram_channels,
    hbm_102,
    hbm_128,
    hbm_204,
    lpddr4_2400,
)
from repro.mem.timing import DramTiming


def test_row_hit_and_miss_latencies():
    t = DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4)
    assert t.row_hit_latency == 15
    assert t.row_miss_latency == 45


def test_negative_timing_rejected():
    with pytest.raises(ConfigError):
        DramTiming(t_cas=0, t_rcd=15, t_rp=15, t_ras=39, burst=4)
    with pytest.raises(ConfigError):
        DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4, extra_io=-1)


def test_with_extra_io_preserves_other_fields():
    t = DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4, extra_io=10)
    t0 = t.with_extra_io(0)
    assert t0.extra_io == 0
    assert t0.t_cas == 15 and t0.burst == 4


@pytest.mark.parametrize(
    "factory, gbps",
    [
        (ddr4_2400, 38.4),
        (ddr4_3200, 51.2),
        (lpddr4_2400, 38.4),
        (hbm_102, 102.4),
        (hbm_128, 128.0),
        (hbm_204, 204.8),
    ],
)
def test_peak_bandwidths_match_paper(factory, gbps):
    assert factory().peak_gbps == pytest.approx(gbps, rel=1e-6)


def test_edram_directions():
    rd = edram_channels("read")
    wr = edram_channels("write")
    assert rd.peak_gbps == pytest.approx(51.2)
    assert wr.peak_gbps == pytest.approx(51.2)
    assert rd.timing.turnaround == 0
    with pytest.raises(ConfigError):
        edram_channels("both")


def test_io_variants():
    assert ddr4_2400().timing.extra_io == 10
    assert ddr4_2400_no_io().timing.extra_io == 0


def test_k_ratio_default_platform():
    # K = B_MS$ / B_MM = 102.4/38.4 = 8/3, approximated as 11/4 in hardware.
    k = hbm_102().peak_gbps / ddr4_2400().peak_gbps
    assert k == pytest.approx(8 / 3)
