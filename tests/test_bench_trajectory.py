"""BENCH_*.json performance-trajectory records: build, validate,
discover the latest committed record, and compare for regressions."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.cellcache import CellProfile, ExecStats
from repro.obs.bench import (
    BENCH_SCHEMA,
    MIN_COMPARABLE_EVENTS,
    bench_backend,
    build_bench_record,
    compare_bench,
    latest_bench,
    load_bench,
    validate_bench,
    write_bench,
)


def stats_with(events, wall, cells=2):
    """ExecStats whose profile sums to the given events/wall."""
    stats = ExecStats(total=cells, executed=cells)
    per_cell_wall = wall / cells
    per_cell_events = events // cells
    stats.profile = [
        CellProfile(label=f"cell{i}", wall=per_cell_wall,
                    events=per_cell_events, cycles=per_cell_events * 2)
        for i in range(cells)
    ]
    return stats


def make_record(rate=100_000.0, events=1_000_000, run_id="t", scale="smoke",
                backend=None):
    return build_bench_record(
        run_id=run_id,
        per_experiment={"fig06": stats_with(events, events / rate)},
        scale=scale, created_unix=1_700_000_000.0, backend=backend)


# ----------------------------------------------------------------------
# Record construction and validation
# ----------------------------------------------------------------------

def test_build_record_schema_and_totals():
    record = make_record(rate=200_000.0, events=400_000)
    validate_bench(record)
    assert record["schema"] == BENCH_SCHEMA
    assert record["run_id"] == "t"
    assert record["scale"] == "smoke"
    assert record["total_events"] == 400_000
    assert record["total_wall_seconds"] == pytest.approx(2.0)
    assert record["events_per_sec"] == pytest.approx(200_000.0)
    entry = record["experiments"]["fig06"]
    assert entry["cells"] == 2 and entry["executed"] == 2
    assert entry["slowest_cell"] in ("cell0", "cell1")
    # Schema-2 provenance: backend defaults to the active (python)
    # backend; per-cell rates name every cell that simulated events.
    assert record["backend"] == "python"
    assert "numpy_version" in record
    assert set(entry["cell_rates"]) == {"cell0", "cell1"}
    assert entry["cell_rates"]["cell0"] == pytest.approx(200_000.0)


def test_schema_1_records_stay_loadable():
    record = make_record()
    record["schema"] = 1
    del record["backend"]
    del record["numpy_version"]
    validate_bench(record)
    assert bench_backend(record) == "python"
    assert bench_backend(make_record(backend="numpy")) == "numpy"


def test_build_record_counts_cache_hits():
    stats = stats_with(100, 1.0)
    stats.cache_hits = 5
    stats.total += 5
    record = build_bench_record("t", {"fig06": stats})
    assert record["experiments"]["fig06"]["cache_hits"] == 5


def test_validate_rejects_bad_records():
    with pytest.raises(ConfigError):
        validate_bench([])  # not an object
    with pytest.raises(ConfigError):
        validate_bench({"schema": 99, "run_id": "x"})
    record = make_record()
    del record["experiments"]["fig06"]["events_per_sec"]
    with pytest.raises(ConfigError):
        validate_bench(record)


def test_write_and_load_roundtrip(tmp_path):
    record = make_record()
    path = tmp_path / "BENCH_9.json"
    write_bench(path, record)
    assert load_bench(path) == record
    with pytest.raises(ConfigError):
        load_bench(tmp_path / "missing.json")
    (tmp_path / "garbage.json").write_text("{not json")
    with pytest.raises(ConfigError):
        load_bench(tmp_path / "garbage.json")


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------

def test_latest_bench_picks_highest_number(tmp_path):
    assert latest_bench(tmp_path) is None
    for n in (1, 3, 12):
        write_bench(tmp_path / f"BENCH_{n}.json", make_record(run_id=str(n)))
    (tmp_path / "BENCH_notanumber.json").write_text("{}")
    found = latest_bench(tmp_path)
    assert found is not None and found.name == "BENCH_12.json"
    assert load_bench(found)["run_id"] == "12"


def test_latest_bench_filters_by_backend(tmp_path):
    """Trajectories are per backend: a python gate never compares
    against a numpy sample even when the numpy record is newer."""
    write_bench(tmp_path / "BENCH_1.json", make_record(run_id="py1"))
    write_bench(tmp_path / "BENCH_2.json",
                make_record(run_id="np2", backend="numpy"))
    assert latest_bench(tmp_path).name == "BENCH_2.json"
    assert latest_bench(tmp_path, backend="python").name == "BENCH_1.json"
    assert latest_bench(tmp_path, backend="numpy").name == "BENCH_2.json"
    assert latest_bench(tmp_path, backend="cython") is None
    # Schema-1 records (no backend key) count as python samples.
    old = make_record(run_id="old")
    old["schema"] = 1
    del old["backend"], old["numpy_version"]
    write_bench(tmp_path / "BENCH_3.json", old)
    assert latest_bench(tmp_path, backend="python").name == "BENCH_3.json"


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

def test_compare_bench_flags_throughput_drop():
    previous = make_record(rate=100_000.0)
    current = make_record(rate=40_000.0)  # -60% < default -50% gate
    regressions, notes = compare_bench(current, previous)
    assert regressions  # aggregate and fig06 both collapsed
    assert any(line.startswith("fig06:") for line in regressions)

    regressions, notes = compare_bench(make_record(rate=80_000.0), previous)
    assert regressions == []  # -20% is within the generous default
    assert any("-20" in line for line in notes)


def test_compare_bench_threshold_is_tunable():
    previous = make_record(rate=100_000.0)
    current = make_record(rate=80_000.0)
    regressions, _ = compare_bench(current, previous, threshold=0.1)
    assert regressions


def test_compare_bench_skips_tiny_runs():
    small = MIN_COMPARABLE_EVENTS // 2
    previous = make_record(rate=100_000.0, events=small)
    current = make_record(rate=1_000.0, events=small)  # 100x slower but tiny
    regressions, notes = compare_bench(current, previous)
    assert regressions == []
    assert any("too few" in line for line in notes)


def test_compare_bench_notes_new_experiments():
    previous = make_record()
    current = make_record()
    current["experiments"]["fig12"] = dict(
        current["experiments"]["fig06"])
    regressions, notes = compare_bench(current, previous)
    assert any("fig12: no previous sample" in line for line in notes)
    assert regressions == []


def test_compare_bench_refuses_cross_backend():
    """A faster backend is not a regression signal (nor an improvement
    one): cross-backend comparisons are declined with a note."""
    previous = make_record(rate=100_000.0)
    current = make_record(rate=10_000.0, backend="numpy")  # 10x "slower"
    regressions, notes = compare_bench(current, previous)
    assert regressions == []
    assert any("backend mismatch" in line for line in notes)


def test_committed_bench_record_is_valid():
    """The repo-root BENCH_*.json trajectory must always validate."""
    import pathlib
    repo = pathlib.Path(__file__).resolve().parent.parent
    latest = latest_bench(repo)
    assert latest is not None, "no committed BENCH_*.json at repo root"
    record = load_bench(latest)
    assert record["total_events"] >= MIN_COMPARABLE_EVENTS
    assert json.loads(latest.read_text())["schema"] == BENCH_SCHEMA
