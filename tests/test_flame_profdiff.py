"""Flamegraph rendering and symbol-level profile diffing.

Both consume the profiler's collapsed-stack format and must be fully
self-contained: the SVG/HTML output may not reference any external
resource (CI ships it as an artifact viewed offline), and the diff must
be exactly empty for identical inputs (CI asserts `repro profile diff`
is clean when nothing changed).
"""

import pytest

from repro.obs.flame import build_tree, render_html, render_svg
from repro.obs.profdiff import diff_profiles, render_diff
from repro.obs.profiler import Profile


@pytest.fixture
def profile():
    p = Profile()
    p.add("mcf/baseline", ("exec.run", "engine.step", "channel.issue"), 40)
    p.add("mcf/baseline", ("exec.run", "engine.step"), 25)
    p.add("mcf/dap", ("exec.run", "dap.decide"), 35)
    p.meta["hz"] = 101
    return p


# ----------------------------------------------------------------------
# Flamegraphs
# ----------------------------------------------------------------------

def test_build_tree_nests_frames_under_cell_lanes(profile):
    tree = build_tree(profile)
    assert tree["value"] == 100
    lanes = tree["children"]
    assert set(lanes) == {"cell:mcf/baseline", "cell:mcf/dap"}
    baseline = lanes["cell:mcf/baseline"]
    assert baseline["value"] == 65
    step = baseline["children"]["exec.run"]["children"]["engine.step"]
    assert step["value"] == 65
    assert step["children"]["channel.issue"]["value"] == 40


def test_svg_is_self_contained_and_names_frames(profile):
    svg = render_svg(profile, title="unit flame")
    assert svg.startswith("<svg")
    assert 'xmlns="http://www.w3.org/2000/svg"' in svg
    for needle in ("cell:mcf/dap", "engine.step", "dap.decide", "unit flame"):
        assert needle in svg
    # Self-containment: no fetches of any kind.
    for forbidden in ("http://", "https://", "<script src", "@import",
                      "url("):
        offenders = [i for i in range(len(svg))
                     if svg.startswith(forbidden, i)]
        # the xmlns namespace *identifier* is the one allowed http://
        if forbidden == "http://":
            assert all("w3.org" in svg[i:i + 40] for i in offenders)
        else:
            assert not offenders
    # Zoom script rides along inline.
    assert "<script>" in svg and "</script>" in svg


def test_html_wraps_svg_in_offline_page(profile):
    html = render_html(profile, title="unit flame", note="n=3")
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert "<svg" in html and "unit flame" in html
    assert "<link" not in html and "src=" not in html


def test_empty_profile_renders_placeholder():
    svg = render_svg(Profile(), title="empty")
    assert "<svg" in svg  # degrades gracefully, never raises


# ----------------------------------------------------------------------
# Profile diffs
# ----------------------------------------------------------------------

def test_identical_profiles_diff_clean(profile):
    diff = diff_profiles(profile, profile)
    assert diff.max_drift_pp == 0.0
    assert all(d.status == "~" and d.delta_pp == 0.0 for d in diff.overall)
    assert "no frame-level drift" in render_diff(diff)


def test_diff_ranks_growth_shrinkage_new_and_gone():
    before = Profile()
    before.add("c", ("m.hot",), 60)
    before.add("c", ("m.cooling",), 30)
    before.add("c", ("m.gone",), 10)
    after = Profile()
    after.add("c", ("m.hot",), 80)
    after.add("c", ("m.cooling",), 15)
    after.add("c", ("m.fresh",), 5)

    diff = diff_profiles(before, after)
    by_symbol = {d.symbol: d for d in diff.overall}
    assert by_symbol["m.hot"].status == "grew"
    assert by_symbol["m.hot"].delta_pp == pytest.approx(20.0)
    assert by_symbol["m.cooling"].status == "shrank"
    assert by_symbol["m.gone"].status == "gone"
    assert by_symbol["m.fresh"].status == "new"
    # Ranked by |delta|: the 20pp swing outranks the 15pp one.
    assert diff.top(1)[0].symbol == "m.hot"
    rendered = render_diff(diff)
    assert "m.hot" in rendered and "grew" in rendered


def test_profile_top_subcommand_ranks_symbols(profile, tmp_path, capsys):
    from repro.obs.profcli import profile_main

    path = tmp_path / "p.collapsed"
    path.write_text(profile.collapsed(), encoding="utf-8")

    assert profile_main(["top", str(path)]) == 0
    out = capsys.readouterr().out
    assert "100 samples across 2 cells" in out
    assert "engine.step" in out

    assert profile_main(["top", str(path), "--cell", "mcf/dap"]) == 0
    out = capsys.readouterr().out
    assert "67 samples" not in out and "35 samples" in out
    assert "dap.decide" in out and "engine.step" not in out

    assert profile_main(["top", str(path), "--cell", "nope"]) == 2
    assert "no cell 'nope'" in capsys.readouterr().err


def test_per_cell_breakdown_isolates_drift():
    before = Profile()
    before.add("cellA", ("m.f",), 50)
    before.add("cellB", ("m.g",), 50)
    after = Profile()
    after.add("cellA", ("m.f",), 80)  # only cellA drifted
    after.add("cellB", ("m.g",), 50)

    diff = diff_profiles(before, after, per_cell=True)
    assert "cellA" in diff.per_cell
    drifted = {d.symbol for d in diff.per_cell["cellA"]}
    assert "m.f" in drifted
    assert not any(d.symbol == "m.g" and abs(d.delta_pp) > 1.0
                   for d in diff.per_cell.get("cellB", []))
