"""Tests for the Banshee, TUNTU and CBP related-work policies."""

from repro.cache.sectored import SectoredCacheArray
from repro.engine import Simulator
from repro.hierarchy.msc_sectored import SectoredMscController
from repro.mem.configs import ddr4_2400, hbm_102
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind, Request
from repro.policies.banshee import BansheePolicy
from repro.policies.cbp import CbpPolicy
from repro.policies.tuntu import TuntuPolicy


def make_controller(policy, capacity=8 << 20):
    sim = Simulator()
    cache_dev = MemoryDevice(sim, hbm_102())
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("l4", capacity, assoc=4, sector_bytes=4096)
    ctrl = SectoredMscController(sim, cache_dev, mm_dev, array, policy=policy,
                                 tag_cache=None)
    return sim, ctrl


# ----------------------------------------------------------------------
# Banshee
# ----------------------------------------------------------------------

def test_banshee_cold_pages_bypass_fill():
    policy = BansheePolicy(fill_threshold=2, sample_rate=1)
    sim, ctrl = make_controller(policy)
    assert policy.bypass_fill(now=0, line=10) is True
    assert policy.fills_skipped == 1
    assert policy.fills_performed == 0


def test_banshee_fills_once_frequency_clears_threshold():
    policy = BansheePolicy(fill_threshold=2, sample_rate=1)
    sim, ctrl = make_controller(policy)
    policy.on_read(0, line=10)
    assert policy.bypass_fill(now=0, line=10) is True  # freq 1 < 2
    policy.on_read(0, line=10)
    assert policy.frequency(10) == 2
    assert policy.bypass_fill(now=0, line=10) is False
    assert policy.fills_performed == 1
    # The whole 4KB page is hot, not just the line.
    assert policy.bypass_fill(now=0, line=11) is False


def test_banshee_tag_updates_charge_cache_dram_traffic():
    policy = BansheePolicy(sample_rate=1)
    sim, ctrl = make_controller(policy)
    policy.on_read(0, line=10)
    policy.on_write(0, line=20)
    sim.run()
    assert policy.tag_updates == 2
    assert ctrl.stats.meta_writes == 2
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.META_WRITE) == 2


def test_banshee_samples_one_in_n_accesses():
    policy = BansheePolicy(sample_rate=4)
    sim, ctrl = make_controller(policy)
    for _ in range(8):
        policy.on_read(0, line=10)
    assert policy.tag_updates == 2
    assert policy.frequency(10) == 2


def test_banshee_epoch_halves_counters_and_drops_cold_pages():
    policy = BansheePolicy(sample_rate=1, epoch_cycles=100)
    sim, ctrl = make_controller(policy)
    for _ in range(4):
        policy.on_read(0, line=10)
    policy.on_read(0, line=64 * 7)  # page 7: counter 1
    policy.tick(now=100)
    assert policy.frequency(10) == 2
    assert policy.frequency(64 * 7) == 0  # 1 >> 1 == 0: dropped


def test_banshee_always_variant_always_fills():
    policy = BansheePolicy(fill_threshold=0, sample_rate=1)
    assert policy.name == "banshee-always"
    sim, ctrl = make_controller(policy)
    assert policy.bypass_fill(now=0, line=10) is False  # cold, fills anyway
    assert policy.fills_performed == 1
    assert policy.fills_skipped == 0
    # ... and still pays the tag-update traffic.
    policy.on_read(0, line=10)
    assert policy.tag_updates == 1


# ----------------------------------------------------------------------
# TUNTU
# ----------------------------------------------------------------------

def test_tuntu_first_touch_skips_then_reuse_promotes():
    policy = TuntuPolicy()
    sim, ctrl = make_controller(policy)
    assert policy.bypass_fill(now=0, line=10) is True  # first touch
    assert policy.fills_skipped == 1
    assert policy.bypass_fill(now=0, line=12) is False  # same page: reuse
    assert policy.promotions == 1
    assert policy.has_reuse(10)
    assert policy.bypass_fill(now=0, line=13) is False  # stays promoted
    assert policy.fills_performed == 2


def test_tuntu_epoch_demotes_promoted_pages():
    policy = TuntuPolicy(epoch_cycles=100)
    sim, ctrl = make_controller(policy)
    policy.bypass_fill(now=0, line=10)
    policy.bypass_fill(now=0, line=10)
    assert policy.has_reuse(10)
    policy.tick(now=100)
    assert not policy.has_reuse(10)
    # The demoted page sits in the first-touch filter: one miss re-proves.
    assert policy.bypass_fill(now=101, line=10) is False
    assert policy.promotions == 2


def test_tuntu_first_touch_filter_is_bounded():
    policy = TuntuPolicy(max_tracked=2)
    sim, ctrl = make_controller(policy)
    for page in range(3):  # page 0 falls out of the 2-entry FIFO
        policy.bypass_fill(now=0, line=page * 64)
    assert policy.bypass_fill(now=0, line=0) is True  # forgotten: first touch
    assert policy.bypass_fill(now=0, line=2 * 64) is False  # still tracked


# ----------------------------------------------------------------------
# CBP
# ----------------------------------------------------------------------

def test_cbp_grants_prefetches_when_memory_is_idle():
    policy = CbpPolicy(max_credits=4)
    sim, ctrl = make_controller(policy)
    assert policy.throttles_prefetch is True
    for _ in range(4):
        assert policy.allow_prefetch(now=0, core_id=0, line=10) is True
    assert policy.granted == 4


def test_cbp_denies_once_the_credit_pool_drains():
    policy = CbpPolicy(max_credits=2)
    sim, ctrl = make_controller(policy)
    assert policy.allow_prefetch(now=0, core_id=0, line=10) is True
    assert policy.allow_prefetch(now=0, core_id=0, line=11) is True
    assert policy.allow_prefetch(now=0, core_id=0, line=12) is False
    assert policy.denied == 1
    assert 0.0 < policy.deny_rate() < 1.0


def test_cbp_refills_nothing_under_queue_pressure():
    policy = CbpPolicy(epoch_cycles=100, max_credits=8,
                       low_occupancy=0.0, high_occupancy=0.5)
    sim, ctrl = make_controller(policy)
    for i in range(64):  # saturate the DRAM queues
        ctrl.mm_dev.enqueue(Request(line=i * 64, kind=AccessKind.DEMAND_READ))
    policy.allow_prefetch(now=100, core_id=0, line=10)  # epoch: refill at 0
    assert policy.allow_prefetch(now=100, core_id=0, line=11) is False
    assert policy.denied >= 1


def test_cbp_recovers_credits_when_pressure_clears():
    policy = CbpPolicy(epoch_cycles=100, max_credits=8,
                       low_occupancy=0.0, high_occupancy=0.5)
    sim, ctrl = make_controller(policy)
    for i in range(64):
        ctrl.mm_dev.enqueue(Request(line=i * 64, kind=AccessKind.DEMAND_READ))
    policy.tick(now=100)
    assert policy.allow_prefetch(now=100, core_id=0, line=10) is False
    sim.run()  # drain the queues
    policy.tick(now=100_000)
    assert policy.allow_prefetch(now=100_000, core_id=0, line=10) is True
