"""The typed public facade: requests, round trips, engine hooks.

The facade contract: everything callers need — request/response types,
execution, cancellation — is reachable from ``repro.api`` without
importing runner or engine internals, and a facade run is bit-identical
to driving the engine directly.
"""

import dataclasses

import pytest

from repro.api import (
    CellExecutionCancelled,
    ExperimentRequest,
    JobStatus,
    TaskCell,
    result_to_dict,
    run_cells,
    run_experiment,
    stats_to_dict,
)
from repro.errors import ConfigError
from repro.experiments.exec import run_spec
from repro.experiments.registry import get_spec


# Module-level so TaskCell keys (fn qualname) resolve.
def _double(x=0):
    return 2 * x


def _boom():
    raise ValueError("cell exploded")


# ----------------------------------------------------------------------
# ExperimentRequest
# ----------------------------------------------------------------------

def test_request_round_trips_through_dict():
    request = ExperimentRequest(
        experiment="fig06", scale="smoke", workloads=("mcf", "milc"),
        jobs=4, trace=True, timeout_seconds=12.5, max_attempts=3,
        profile=True)
    data = request.to_dict()
    assert data["workloads"] == ["mcf", "milc"]  # JSON-friendly list
    assert data["profile"] is True
    assert ExperimentRequest.from_dict(data) == request


def test_request_coerces_workload_lists_to_tuples():
    request = ExperimentRequest(experiment="fig06", workloads=["mcf"])
    assert request.workloads == ("mcf",)
    assert ExperimentRequest.from_dict(
        {"experiment": "fig06", "workloads": ["mcf"]}).workloads == ("mcf",)


def test_request_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigError, match="unknown request field"):
        ExperimentRequest.from_dict({"experiment": "fig06", "bogus": 1})
    with pytest.raises(ConfigError, match="'experiment'"):
        ExperimentRequest.from_dict({"scale": "smoke"})


@pytest.mark.parametrize("patch, message", [
    ({"experiment": "fig99"}, "unknown experiment"),
    ({"scale": "huge"}, "unknown scale"),
    ({"jobs": 0}, "jobs"),
    ({"max_attempts": 0}, "max_attempts"),
    ({"timeout_seconds": -1.0}, "timeout_seconds"),
    ({"probe_interval": 0}, "probe_interval"),
])
def test_request_validation_rejects_bad_fields(patch, message):
    data = {"experiment": "fig06", **patch}
    with pytest.raises(ConfigError, match=message):
        ExperimentRequest.from_dict(data).validate()


def test_fingerprint_covers_what_not_how():
    base = ExperimentRequest(experiment="fig06", scale="smoke",
                             workloads=("mcf",))
    # Execution knobs don't change what is simulated.
    same = dataclasses.replace(base, jobs=8, trace=True, max_attempts=5)
    assert base.fingerprint() == same.fingerprint()
    # Profiling is observation-only: it must never split the dedupe key.
    assert base.fingerprint() == dataclasses.replace(
        base, profile=True).fingerprint()
    # The simulated content does.
    assert base.fingerprint() != dataclasses.replace(
        base, workloads=("milc",)).fingerprint()
    assert base.fingerprint() != dataclasses.replace(
        base, scale="small").fingerprint()


def test_job_status_round_trips_and_knows_terminal():
    status = JobStatus(id="j1", state="succeeded",
                       request=ExperimentRequest(experiment="fig06"),
                       executed_cells=2)
    assert status.terminal
    data = status.to_dict()
    assert data["terminal"] is True
    assert JobStatus.from_dict(data) == status
    assert not JobStatus.from_dict(
        {**data, "state": "running"}).terminal


# ----------------------------------------------------------------------
# Execution via the facade
# ----------------------------------------------------------------------

def test_run_experiment_matches_direct_run_spec(shared_cache_dir):
    request = ExperimentRequest(experiment="fig06", scale="smoke",
                                workloads=("mcf",))
    via_facade = run_experiment(request, cache=shared_cache_dir)
    direct = run_spec(get_spec("fig06"), scale="smoke", workloads=["mcf"],
                      cache=shared_cache_dir)
    # Raw (unformatted) rows: exact equality == bit-identical results.
    assert via_facade.headers == direct.headers
    assert via_facade.rows == direct.rows


def test_run_experiment_accepts_bare_name_and_overrides(shared_cache_dir):
    run_experiment("fig06", scale="smoke", workloads=("mcf",),
                   cache=shared_cache_dir)  # warm
    result = run_experiment("fig06", scale="smoke", workloads=("mcf",),
                            cache=shared_cache_dir)
    assert result.rows
    assert result.stats is not None
    # The dedupe tier at work: an identical re-run simulates nothing.
    assert result.stats.executed == 0
    assert result.stats.cache_hits == result.stats.total


def test_run_experiment_reports_progress_through_on_cell(shared_cache_dir):
    run_experiment("fig06", scale="smoke", workloads=("mcf",),
                   cache=shared_cache_dir)  # warm
    seen = []
    run_experiment("fig06", scale="smoke", workloads=("mcf",),
                   cache=shared_cache_dir,
                   on_cell=lambda label, status, done, total:
                   seen.append((label, status, done, total)))
    assert seen, "on_cell hook never fired"
    labels = {label for label, *_ in seen}
    assert "mcf/dap" in labels
    done, total = seen[-1][2], seen[-1][3]
    assert done == total == len(seen)
    assert all(status == "cached" for _, status, _, _ in seen)


def test_run_cells_executes_task_cells():
    cells = [TaskCell(f"t{i}", _double, (("x", i),)) for i in range(4)]
    results, stats = run_cells(cells)
    assert results == {f"t{i}": 2 * i for i in range(4)}
    assert stats.executed == 4 and not stats.failures


def test_should_stop_cancels_between_cells():
    calls = []

    def stop_after_two():
        return "cancelled" if len(calls) >= 2 else None

    cells = [TaskCell(f"t{i}", _double, (("x", i),)) for i in range(5)]
    with pytest.raises(CellExecutionCancelled) as excinfo:
        run_cells(cells, should_stop=stop_after_two,
                  on_cell=lambda *args: calls.append(args))
    assert excinfo.value.reason == "cancelled"
    # Two cells settled before the stop; the rest never ran.
    assert excinfo.value.stats.executed == 2
    assert len(calls) == 2


def test_should_stop_before_first_cell_runs_nothing():
    cells = [TaskCell("t0", _double, (("x", 1),))]
    with pytest.raises(CellExecutionCancelled) as excinfo:
        run_cells(cells, should_stop=lambda: "timeout")
    assert excinfo.value.reason == "timeout"
    assert excinfo.value.stats.executed == 0


def test_on_cell_reports_errors_without_aborting():
    cells = [TaskCell("bad", _boom), TaskCell("good", _double, (("x", 3),))]
    seen = []
    results, stats = run_cells(
        cells, on_cell=lambda label, status, done, total:
        seen.append((label, status)))
    assert results == {"good": 6}
    assert stats.failed == 1
    assert ("bad", "error") in seen and ("good", "ok") in seen


# ----------------------------------------------------------------------
# Serialization helpers
# ----------------------------------------------------------------------

def test_result_and_stats_to_dict(shared_cache_dir):
    result = run_experiment("fig06", scale="smoke", workloads=("mcf",),
                            cache=shared_cache_dir)
    data = result_to_dict(result)
    assert data["headers"] == list(result.headers)
    assert data["rows"] == [list(row) for row in result.rows]
    stats = data["stats"]
    assert stats["total"] == result.stats.total
    assert stats["cache_hits"] + stats["executed"] == stats["total"]
    assert stats_to_dict(None) is None
