"""Tests for DRAM refresh modeling (tREFI / tRFC)."""

import pytest

from repro.engine import Simulator
from repro.engine.clock import ClockDomain
from repro.errors import ConfigError
from repro.mem.channel import DramChannel
from repro.mem.request import AccessKind, Request
from repro.mem.timing import DramTiming


def make_channel(sim, t_refi=0, t_rfc=0):
    clock = ClockDomain(device_ghz=1.2, cpu_ghz=4.0)
    timing = DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4,
                        t_refi=t_refi, t_rfc=t_rfc)
    return DramChannel(sim, clock, timing, num_banks=16, row_bytes=2048)


def stream(channel, sim, n):
    done = []
    for line in range(n):
        channel.enqueue(Request(line=line, kind=AccessKind.DEMAND_READ,
                                on_complete=lambda r, t: done.append(t)))
    sim.run()
    return done


def test_refresh_validation():
    with pytest.raises(ConfigError):
        DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4, t_refi=-1)
    with pytest.raises(ConfigError):
        # tRFC must fit inside the refresh interval.
        DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4,
                   t_refi=100, t_rfc=100)


def test_with_refresh_copies_timings():
    base = DramTiming(t_cas=15, t_rcd=15, t_rp=15, t_ras=39, burst=4)
    refreshed = base.with_refresh(t_refi=9360, t_rfc=420)
    assert refreshed.t_refi == 9360 and refreshed.t_rfc == 420
    assert refreshed.t_cas == base.t_cas
    assert base.t_refi == 0  # original untouched


def test_refresh_disabled_by_default():
    sim = Simulator()
    chan = make_channel(sim)
    assert chan._trefi == 0
    done = stream(chan, sim, 64)
    assert len(done) == 64


def test_refresh_reduces_throughput():
    sim_off = Simulator()
    off = make_channel(sim_off)
    stream(off, sim_off, 2048)

    sim_on = Simulator()
    # Aggressive refresh (10% duty) for a visible effect in a short run.
    on = make_channel(sim_on, t_refi=1000, t_rfc=100)
    stream(on, sim_on, 2048)
    assert sim_on.now > sim_off.now
    # Roughly bounded by the refresh duty cycle.
    assert sim_on.now < sim_off.now * 1.35


def test_command_landing_in_refresh_window_is_deferred():
    sim = Simulator()
    chan = make_channel(sim, t_refi=1000, t_rfc=400)
    # t_refi=1000 dev cycles -> 3334 CPU; window [3334k, 3334k+1334).
    # A request issued at cycle 0 lands in the k=0 window and must wait
    # until the refresh completes.
    done = []
    chan.enqueue(Request(line=0, kind=AccessKind.DEMAND_READ,
                         on_complete=lambda r, t: done.append(t)))
    sim.run()
    assert done[0] >= chan._trfc
