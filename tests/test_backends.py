"""Backend registry, bit-identity parity, and trace-store accounting.

The backends contract (PERFORMANCE.md "Backends") is that every backend
produces *bit-identical* simulation inputs — same materialized traces,
same warm cache state — differing only in wall clock. These tests pin
that contract directly (python vs numpy trace/warm parity, golden
equality) plus the plumbing around it: name resolution, auto fallback
when numpy is absent, trace-store hit accounting, and backend-blind
cell caching.
"""

import sys
import tempfile
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import ExperimentRequest, MixCell, run_cells
from repro.backends import (
    BACKEND_NAMES,
    active_backend_name,
    configure_backend,
    numpy_version,
    resolve_backend_name,
)
from repro.backends.base import TraceStore
from repro.backends.python_backend import PythonBackend
from repro.errors import ConfigError
from repro.experiments.common import get_scale, scaled_config
from repro.hierarchy.system import build_system
from repro.workloads.mixes import rate_mix
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import core_base_line, generate_trace

HAVE_NUMPY = numpy_version() is not None
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism_golden.json"

PARITY_PROFILES = ("mcf", "omnetpp", "libquantum")


@pytest.fixture(autouse=True)
def _restore_python_backend():
    """Tests may install any backend; leave the process on the default."""
    yield
    configure_backend("python")


def _numpy_backend():
    from repro.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------

def test_default_backend_is_python():
    assert resolve_backend_name(None) == "python"
    assert configure_backend(None).name == "python"
    assert active_backend_name() == "python"


def test_unknown_backend_rejected():
    with pytest.raises(ConfigError, match="unknown backend"):
        resolve_backend_name("cython")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "auto")
    assert resolve_backend_name(None) in ("python", "numpy")
    # An explicit name always wins over the environment.
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert resolve_backend_name("python") == "python"


@needs_numpy
def test_auto_resolves_to_numpy_when_available():
    assert resolve_backend_name("auto") == "numpy"
    assert configure_backend("numpy").name == "numpy"


def test_auto_falls_back_to_python_without_numpy(monkeypatch):
    # A None entry makes `import numpy` raise ImportError, which is
    # exactly the [fast]-extra-not-installed situation.
    monkeypatch.setitem(sys.modules, "numpy", None)
    assert numpy_version() is None
    assert resolve_backend_name("auto") == "python"
    assert configure_backend("auto").name == "python"


def test_explicit_numpy_without_numpy_raises(monkeypatch):
    monkeypatch.setitem(sys.modules, "numpy", None)
    with pytest.raises(ConfigError, match="fast"):
        configure_backend("numpy")


def test_configure_installs_fresh_store():
    first = configure_backend("python")
    first.store.generated = 7
    second = configure_backend("python")
    assert second.store.generated == 0
    assert second.store is not first.store


# ----------------------------------------------------------------------
# Trace store
# ----------------------------------------------------------------------

def test_trace_store_counts_and_identity():
    store = TraceStore()
    built = []

    def build():
        built.append(1)
        return [(0, False, 1), (1, True, 2)]

    a = store.trace(("k",), build)
    b = store.trace(("k",), build)
    assert a is b and len(built) == 1
    assert (store.generated, store.reused) == (1, 1)


def test_trace_store_evicts_at_capacity():
    store = TraceStore(max_refs=3)
    store.trace(("a",), lambda: [(0, False, 0)] * 2)
    store.trace(("b",), lambda: [(0, False, 0)] * 2)  # evicts "a" (FIFO)
    store.trace(("a",), lambda: [(0, False, 0)] * 2)
    assert store.generated == 3 and store.reused == 0


# ----------------------------------------------------------------------
# Bit-identity parity: materialized traces and warm state
# ----------------------------------------------------------------------

@needs_numpy
@pytest.mark.parametrize("profile_name", PARITY_PROFILES)
def test_trace_parity_python_numpy_generator(profile_name):
    """All three producers emit the identical (gap, write, line) stream."""
    profile = get_profile(profile_name)
    base = core_base_line(1)
    for seed, scale in ((0, 1.0 / 64), (3, 1.0 / 16)):
        reference = list(generate_trace(profile, num_refs=2000,
                                        base_line=base, scale=scale,
                                        seed=seed))
        via_python = PythonBackend().trace(profile, 2000, base_line=base,
                                           scale=scale, seed=seed)
        via_numpy = _numpy_backend().trace(profile, 2000, base_line=base,
                                           scale=scale, seed=seed)
        assert via_python == reference
        assert via_numpy == reference
        # Exact Python ints, not numpy scalars: downstream hashing and
        # arithmetic must be indistinguishable from the generator's.
        assert all(type(line) is int for _, _, line in via_numpy)
        assert all(type(write) is bool for _, write, _ in via_numpy)


@needs_numpy
@pytest.mark.parametrize("profile_name", PARITY_PROFILES)
def test_warm_state_parity(profile_name):
    """Both warm paths leave byte-identical sector valid/dirty state."""
    scale = get_scale("smoke")
    mix = rate_mix(profile_name)
    config = replace(scaled_config(scale), num_cores=mix.num_cores)

    def build_warm(backend):
        traces = backend.mix_traces(mix, 10, scale.footprint_scale)
        system = build_system(config, [iter(t) for t in traces])
        count = backend.warm_mix(system.msc, mix, scale.footprint_scale)
        return system.msc, count

    msc_py, count_py = build_warm(PythonBackend())
    msc_np, count_np = build_warm(_numpy_backend())
    assert count_np == count_py
    probed = 0
    for line, _ in mix.warm_sets(scale.footprint_scale):
        a = msc_py.array.find_sector(line)
        b = msc_np.array.find_sector(line)
        assert (a is None) == (b is None), f"line {line}"
        if a is not None:
            assert (a.valid, a.dirty) == (b.valid, b.dirty), f"line {line}"
            probed += 1
    assert probed > 0


@needs_numpy
def test_numpy_golden_matches_committed():
    """End to end: the numpy backend reproduces the committed golden —
    same fingerprints, same telemetry, same trace SHA-256."""
    from repro.obs.golden import capture_golden, diff_goldens, load_golden

    configure_backend("numpy")
    with tempfile.TemporaryDirectory() as tmp:
        fresh = capture_golden(["mcf"], ["baseline", "dap"], trace_dir=tmp)
    diffs = diff_goldens(load_golden(GOLDEN_PATH), fresh)
    assert diffs == [], "numpy backend drifted from the golden:\n" + \
        "\n".join(diffs)


# ----------------------------------------------------------------------
# Engine integration: memoization accounting and backend-blind caching
# ----------------------------------------------------------------------

def _smoke_cells(policies=("baseline", "dap")):
    scale = get_scale("smoke")
    return [
        MixCell(f"mcf/{policy}", rate_mix("mcf"),
                scaled_config(scale, policy=policy), scale)
        for policy in policies
    ]


def test_trace_reuse_across_cells_and_summary():
    cells = _smoke_cells()
    n = rate_mix("mcf").num_cores
    _, stats = run_cells(cells, jobs=1, cache=None, backend="python")
    # The baseline cell materializes one trace per core; the dap cell
    # replays the same (workload, seed) pairs from the store.
    assert stats.traces_generated == n
    assert stats.traces_reused == n
    assert f"traces: {n} generated, {n} reused" in stats.summary()


def test_cell_cache_is_backend_blind(tmp_path):
    """Cells computed under python are served verbatim under numpy (and
    vice versa): the backend never enters the cache key."""
    cache = str(tmp_path / "cells")
    results_py, stats_py = run_cells(_smoke_cells(), cache=cache,
                                     backend="python")
    assert stats_py.executed == 2
    other = "numpy" if HAVE_NUMPY else "auto"
    results_2, stats_2 = run_cells(_smoke_cells(), cache=cache, backend=other)
    assert stats_2.executed == 0
    assert stats_2.cache_hits == 2
    assert stats_2.traces_generated == 0
    for label, result in results_py.items():
        assert results_2[label].mean_ipc == result.mean_ipc
        assert results_2[label].cycles == result.cycles


# ----------------------------------------------------------------------
# Request plumbing
# ----------------------------------------------------------------------

def test_request_backend_round_trip_and_validation():
    request = ExperimentRequest(experiment="fig06", backend="numpy",
                                profile=True)
    request.validate()
    assert ExperimentRequest.from_dict(request.to_dict()) == request
    with pytest.raises(ConfigError, match="unknown backend"):
        ExperimentRequest(experiment="fig06", backend="fortran").validate()


def test_request_fingerprint_ignores_backend_and_profile():
    base = ExperimentRequest(experiment="fig06", scale="smoke")
    for name in BACKEND_NAMES:
        variant = ExperimentRequest(experiment="fig06", scale="smoke",
                                    backend=name, profile=True)
        assert variant.fingerprint() == base.fingerprint()
