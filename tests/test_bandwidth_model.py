"""Tests for the Section III analytical bandwidth model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth_model import (
    analytic_dram_cache_read_bw,
    analytic_edram_cache_read_bw,
    delivered_bandwidth,
    max_delivered_bandwidth,
    optimal_fractions,
    optimal_mm_cas_fraction,
)
from repro.errors import ConfigError


def test_paper_example_all_accesses_to_m1():
    # M1 = 102.4, M2 = 51.2; f = (1, 0) delivers 102.4 (Section III).
    assert delivered_bandwidth([102.4, 51.2], [1.0, 0.0]) == pytest.approx(102.4)


def test_paper_example_even_split_bottlenecked_by_m2():
    assert delivered_bandwidth([102.4, 51.2], [0.5, 0.5]) == pytest.approx(102.4)


def test_paper_example_optimal_split():
    # Optimal: 2/3 to M1, 1/3 to M2 -> 153.6 GB/s.
    fractions = optimal_fractions([102.4, 51.2])
    assert fractions == pytest.approx([2 / 3, 1 / 3])
    assert delivered_bandwidth([102.4, 51.2], fractions) == pytest.approx(153.6)


def test_max_delivered_is_sum_of_bandwidths():
    assert max_delivered_bandwidth([102.4, 38.4]) == pytest.approx(140.8)


def test_inflation_reduces_ceiling():
    assert max_delivered_bandwidth([100.0, 50.0], inflation=1.5) == pytest.approx(100.0)
    with pytest.raises(ConfigError):
        max_delivered_bandwidth([100.0], inflation=0.5)


def test_optimal_mm_cas_fraction_is_027_for_default_platform():
    # Fig. 8's optimal fraction: 38.4 / (102.4 + 38.4) ~ 0.27.
    assert optimal_mm_cas_fraction(102.4, 38.4) == pytest.approx(0.2727, abs=1e-3)


def test_input_validation():
    with pytest.raises(ConfigError):
        delivered_bandwidth([], [])
    with pytest.raises(ConfigError):
        delivered_bandwidth([10.0], [0.5, 0.5])
    with pytest.raises(ConfigError):
        delivered_bandwidth([10.0, -1.0], [0.5, 0.5])
    with pytest.raises(ConfigError):
        delivered_bandwidth([10.0, 10.0], [0.9, 0.2])
    with pytest.raises(ConfigError):
        optimal_fractions([0.0])


@given(st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_optimal_partition_achieves_sum(bandwidths):
    """Property: the Eq. 3 partition always delivers sum(B_i) (Eq. 4)."""
    fractions = optimal_fractions(bandwidths)
    assert sum(fractions) == pytest.approx(1.0)
    assert delivered_bandwidth(bandwidths, fractions) == pytest.approx(sum(bandwidths))


@given(
    st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=2, max_size=6),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_no_partition_beats_the_optimum(bandwidths, data):
    """Property: any valid partition delivers at most sum(B_i)."""
    raw = data.draw(
        st.lists(st.floats(min_value=0.01, max_value=1.0),
                 min_size=len(bandwidths), max_size=len(bandwidths))
    )
    total = sum(raw)
    fractions = [x / total for x in raw]
    # Guard against float renormalization drift.
    fractions[-1] = 1.0 - sum(fractions[:-1])
    delivered = delivered_bandwidth(bandwidths, fractions)
    assert delivered <= sum(bandwidths) * (1 + 1e-9)


# ----------------------------------------------------------------------
# Fig. 1 closed forms
# ----------------------------------------------------------------------

def test_dram_cache_curve_rises_then_flattens():
    bc, bm = 102.4, 38.4
    points = [analytic_dram_cache_read_bw(h, bc, bm)
              for h in (0, 0.25, 0.5, 0.7, 0.9, 1.0)]
    # Rising region while MM-bound.
    assert points[0] < points[1] < points[2]
    # Flat at cache bandwidth from ~70% on (1 - 38.4/102.4 = 62.5%).
    assert points[3] == pytest.approx(bc)
    assert points[4] == pytest.approx(bc)
    assert points[5] == pytest.approx(bc)


def test_edram_curve_peaks_then_falls():
    br, bm = 51.2, 38.4
    h_values = [0, 0.25, 0.5, 0.7, 0.9, 1.0]
    points = [analytic_edram_cache_read_bw(h, br, bm) for h in h_values]
    peak_h = br / (br + bm)
    peak = analytic_edram_cache_read_bw(peak_h, br, bm)
    assert peak == pytest.approx(br + bm)
    # Loss beyond ~50-57% hit rate (the paper's key motivation).
    assert points[3] < peak
    assert points[5] == pytest.approx(br)
    assert points[5] < points[2]  # 100% hit rate is WORSE than 50%


def test_curve_input_validation():
    with pytest.raises(ConfigError):
        analytic_dram_cache_read_bw(1.5, 100, 40)
    with pytest.raises(ConfigError):
        analytic_edram_cache_read_bw(-0.1, 100, 40)
