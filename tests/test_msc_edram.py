"""Integration tests for the sectored eDRAM controller."""

from repro.cache.sectored import SectoredCacheArray, SectorProbe
from repro.engine import Simulator
from repro.hierarchy.msc_edram import EdramMscController
from repro.mem.configs import ddr4_2400, edram_channels
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind
from repro.policies.dap import DapEdramPolicy


def make_controller(policy=None, capacity=4 << 20):
    sim = Simulator()
    read_dev = MemoryDevice(sim, edram_channels("read"))
    write_dev = MemoryDevice(sim, edram_channels("write"))
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = SectoredCacheArray("edram", capacity, assoc=16, sector_bytes=1024)
    ctrl = EdramMscController(sim, read_dev, write_dev, mm_dev, array,
                              policy=policy)
    return sim, ctrl


def run_read(ctrl, sim, line):
    done = []
    ctrl.read(line, core_id=0, callback=lambda t: done.append(t))
    sim.run()
    assert done
    return done[0]


def test_read_hit_uses_read_channels():
    sim, ctrl = make_controller()
    ctrl.warm_line(3)
    run_read(ctrl, sim, 3)
    assert ctrl.cache_read_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1
    assert ctrl.cache_write_dev.total_cas() == 0
    assert ctrl.served_hits == 1


def test_read_miss_fills_on_write_channels():
    sim, ctrl = make_controller()
    run_read(ctrl, sim, 3)
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1
    assert ctrl.cache_write_dev.cas_by_kind().get(AccessKind.FILL_WRITE) == 1
    assert ctrl.cache_read_dev.total_cas() == 0  # fills never touch reads
    assert ctrl.array.probe(3) is SectorProbe.HIT


def test_no_metadata_traffic():
    sim, ctrl = make_controller()
    ctrl.warm_line(3)
    run_read(ctrl, sim, 3)
    assert ctrl.stats.meta_reads == 0
    assert ctrl.stats.meta_writes == 0


def test_tag_latency_delays_service():
    sim, ctrl = make_controller()
    ctrl.warm_line(3)
    finish = run_read(ctrl, sim, 3)
    assert finish >= ctrl.tag_latency


def test_write_lands_on_write_channels():
    sim, ctrl = make_controller()
    ctrl.write(5, core_id=0)
    sim.run()
    assert ctrl.cache_write_dev.cas_by_kind().get(AccessKind.L4_WRITE) == 1
    assert ctrl.array.is_block_dirty(5)


def test_victim_reads_use_read_channels():
    # 1 KB sectors, 16 ways; use a tiny cache to force eviction.
    sim, ctrl = make_controller(capacity=16 * 1024)  # 1 set x 16 ways
    for s in range(16):
        ctrl.write(s * 16, core_id=0)  # 16 lines per 1 KB sector
    sim.run()
    ctrl.write(16 * 16, core_id=0)  # 17th sector evicts a dirty victim
    sim.run()
    assert ctrl.cache_read_dev.cas_by_kind().get(AccessKind.EVICT_READ, 0) >= 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 1


def test_dap_fwb_drops_fill():
    policy = DapEdramPolicy(b_ms=0.2, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    policy.engine._fwb.load(3)
    run_read(ctrl, sim, 3)
    assert ctrl.stats.fwb_applied == 1
    assert ctrl.array.probe(3) is SectorProbe.SECTOR_MISS
    assert ctrl.cache_write_dev.total_cas() == 0


def test_dap_wb_steers_write_to_mm():
    policy = DapEdramPolicy(b_ms=0.2, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    policy.engine._wb.load(3 * float(policy.engine._cost))
    ctrl.write(5, core_id=0)
    sim.run()
    assert ctrl.stats.wb_applied == 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK) == 1
    assert ctrl.cache_write_dev.total_cas() == 0


def test_dap_ifrm_on_clean_hit():
    policy = DapEdramPolicy(b_ms=0.2, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(3)
    policy.engine._ifrm.load(3 * float(policy.engine._cost))
    run_read(ctrl, sim, 3)
    assert ctrl.stats.ifrm_applied == 1
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1
    assert ctrl.cache_read_dev.total_cas() == 0
    assert ctrl.served_hit_rate() == 0.0  # forced miss counts as miss


def test_dirty_hit_never_forced():
    policy = DapEdramPolicy(b_ms=0.2, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(3, dirty=True)
    policy.engine._ifrm.load(3 * float(policy.engine._cost))
    run_read(ctrl, sim, 3)
    assert ctrl.stats.ifrm_applied == 0
    assert ctrl.cache_read_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1


def test_mm_cas_fraction_counts_both_cache_directions():
    sim, ctrl = make_controller()
    run_read(ctrl, sim, 3)     # MM read + fill write
    ctrl.warm_line(100)
    run_read(ctrl, sim, 100)   # read-channel hit
    frac = ctrl.mm_cas_fraction()
    assert 0 < frac < 1
