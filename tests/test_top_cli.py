"""`repro top` and `repro metrics`: sample querying, rendering, exits.

The network edge (`_fetch`) is monkeypatched, so these run without a
live service; the end-to-end scrape against a real app lives in the
service endpoint tests.
"""

import json

import pytest

from repro.obs import top
from repro.obs.metrics import MetricsRegistry, Sample

EXPOSITION = """\
# HELP repro_http_requests_total reqs
# TYPE repro_http_requests_total counter
repro_http_requests_total{method="GET",route="/stats",status="200"} 5
repro_http_requests_total{method="POST",route="/jobs",status="202"} 2
# HELP repro_http_request_seconds latency
# TYPE repro_http_request_seconds histogram
repro_http_request_seconds_bucket{le="0.01",method="GET",route="/stats"} 4
repro_http_request_seconds_bucket{le="+Inf",method="GET",route="/stats"} 5
repro_http_request_seconds_sum{method="GET",route="/stats"} 0.2
repro_http_request_seconds_count{method="GET",route="/stats"} 5
# HELP repro_workers_alive workers
# TYPE repro_workers_alive gauge
repro_workers_alive 2
"""

STATS = {
    "jobs": {"queued": 1, "running": 0, "succeeded": 3, "failed": 0,
             "cancelled": 0},
    "queue_depth": 1,
    "cells_executed": 4, "cells_cached": 2, "cache_hit_ratio": 0.3333,
    "events_simulated": 1000, "events_per_sec": 250000.0,
    "counters": {"jobs_submitted": 4, "jobs_deduped": 1, "job_retries": 0,
                 "orphans_requeued": 0, "orphans_failed": 0,
                 "torn_trace_lines": 0, "sse_frames": 12},
}


@pytest.fixture
def fake_service(monkeypatch):
    def fetch(url, timeout=5.0):
        if url.endswith("/metrics"):
            return EXPOSITION
        if url.endswith("/stats"):
            return json.dumps(STATS)
        raise AssertionError(f"unexpected fetch {url}")

    monkeypatch.setattr(top, "_fetch", fetch)


# ----------------------------------------------------------------------
# Sample querying
# ----------------------------------------------------------------------

def test_sample_value_sums_matching_labels():
    samples = [Sample("x", {"a": "1"}, 2.0), Sample("x", {"a": "2"}, 3.0),
               Sample("y", {}, 9.0)]
    assert top.sample_value(samples, "x") == 5.0
    assert top.sample_value(samples, "x", a="1") == 2.0
    assert top.sample_value(samples, "missing") == 0.0


def test_quantile_from_parsed_exposition(fake_service):
    samples, _ = top.scrape("http://svc")
    p50 = top.quantile(samples, "repro_http_request_seconds", 0.5,
                       method="GET", route="/stats")
    assert p50 is not None and 0 < p50 <= 0.01
    assert top.quantile(samples, "no_such_histogram", 0.5) is None


def test_format_helpers():
    assert top._fmt_seconds(None) == "-"
    assert top._fmt_seconds(0.0005) == "500us"
    assert top._fmt_seconds(0.25) == "250.0ms"
    assert top._fmt_seconds(3.5) == "3.50s"
    assert top._fmt_count(1234) == "1.2k"
    assert top._fmt_count(2_500_000) == "2.50M"
    assert top._fmt_count(7) == "7"


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def test_render_includes_every_section(fake_service):
    samples, stats = top.scrape("http://svc")
    frame = top.render("http://svc", samples, stats, color=False)
    assert "repro top" in frame
    assert "queued 1" in frame
    assert "succeeded 3" in frame
    assert "alive 2" in frame
    assert "hit-ratio 33.3%" in frame
    assert "deduped 1" in frame
    assert "GET" in frame and "/stats" in frame
    assert "\x1b[" not in frame  # color=False really is plain


def test_render_survives_minimal_stats():
    frame = top.render("http://svc", [], {}, color=False)
    assert "repro top" in frame  # no KeyError on missing sections


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def test_top_once_prints_frame(fake_service, capsys):
    assert top.top_main(["--url", "http://svc", "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "queued 1" in out


def test_top_once_fails_cleanly_when_unreachable(monkeypatch, capsys):
    def refuse(url, timeout=5.0):
        raise OSError("connection refused")

    monkeypatch.setattr(top, "_fetch", refuse)
    assert top.top_main(["--url", "http://nowhere", "--once"]) == 1
    assert "cannot scrape" in capsys.readouterr().err


def test_metrics_raw_dump(fake_service, capsys):
    assert top.metrics_main(["--url", "http://svc"]) == 0
    assert capsys.readouterr().out == EXPOSITION


def test_metrics_snapshot_is_json(fake_service, capsys):
    assert top.metrics_main(["--url", "http://svc", "--snapshot"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["repro_workers_alive"] == [{"labels": {}, "value": 2.0}]
    assert len(snap["repro_http_requests_total"]) == 2


def test_metrics_lint_passes_valid_and_rejects_broken(monkeypatch, capsys):
    monkeypatch.setattr(top, "_fetch", lambda url, timeout=5.0: EXPOSITION)
    assert top.metrics_main(["--lint"]) == 0
    assert "exposition format valid" in capsys.readouterr().out

    monkeypatch.setattr(top, "_fetch",
                        lambda url, timeout=5.0: "complete garbage {{{")
    assert top.metrics_main(["--lint"]) == 1
    assert "line 1" in capsys.readouterr().err


def test_live_registry_render_round_trips_through_top_helpers():
    registry = MetricsRegistry()
    registry.histogram("h_seconds", "h", buckets=(1.0, 2.0))
    registry._families["h_seconds"].observe(1.5)
    samples = top.parse_exposition(registry.render())
    assert top.quantile(samples, "h_seconds", 0.5) == pytest.approx(1.5)
