"""Lint: hot-path classes must stay slotted.

Per-event and per-line objects are allocated millions of times per run;
``__slots__`` removes the per-instance ``__dict__`` (smaller objects,
faster attribute access) and is part of the simulator's performance
contract (see PERFORMANCE.md). This test pins the contract so a
refactor can't silently reintroduce dict-backed instances — adding an
attribute to one of these classes means adding it to ``__slots__``.
"""

import pytest

from repro.backends.base import SimBackend, TraceStore
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.python_backend import PythonBackend
from repro.cache.replacement import LRUPolicy, NRUPolicy
from repro.cache.sectored import SectoredCacheArray, _Sector
from repro.cache.sram_cache import Eviction, SRAMCache, _Line
from repro.engine.event_queue import Simulator
from repro.hierarchy.cpu_core import TraceCore
from repro.mem.channel import ChannelStats, DramChannel, _Bank
from repro.mem.request import Request

HOT_PATH_CLASSES = [
    Simulator,
    Request,
    _Bank,
    ChannelStats,
    DramChannel,
    TraceCore,
    SRAMCache,
    _Line,
    Eviction,
    SectoredCacheArray,
    _Sector,
    LRUPolicy,
    NRUPolicy,
    # Backends sit on the trace-materialization path; their classes are
    # importable (and slotted) whether or not numpy is installed.
    TraceStore,
    SimBackend,
    PythonBackend,
    NumpyBackend,
]


@pytest.mark.parametrize("cls", HOT_PATH_CLASSES,
                         ids=lambda c: f"{c.__module__}.{c.__name__}")
def test_declares_slots_and_has_no_instance_dict(cls):
    # The class itself must declare __slots__ (not merely inherit it) …
    assert "__slots__" in vars(cls), f"{cls.__name__} must declare __slots__"
    # … and the whole MRO must be slotted, otherwise instances silently
    # grow a __dict__ anyway and the declaration is decorative.
    for base in cls.__mro__[:-1]:  # skip object
        assert "__dict__" not in (base.__dict__.get("__slots__") or ()), (
            f"{cls.__name__}: base {base.__name__} slots include __dict__")
        assert "__slots__" in vars(base), (
            f"{cls.__name__}: unslotted base {base.__name__} "
            f"reintroduces a per-instance __dict__")
    assert not hasattr(cls, "__dictoffset__") or cls.__dictoffset__ == 0, (
        f"{cls.__name__} instances carry a __dict__")
