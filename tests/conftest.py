"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture(scope="session")
def shared_cache_dir(tmp_path_factory):
    """One session-wide cell cache directory.

    Tests that only need *a* warm cache share it, so the first user
    pays the simulation cost and everyone else gets cache hits.  Tests
    asserting cold-execution counts must use their own tmp directory.
    """
    return str(tmp_path_factory.mktemp("cellcache"))
