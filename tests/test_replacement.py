"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import LRUPolicy, NRUPolicy, make_policy
from repro.errors import ConfigError


class FakeWay:
    def __init__(self):
        self.stamp = 0


def test_lru_selects_least_recently_used():
    policy = LRUPolicy()
    ways = [FakeWay() for _ in range(4)]
    for way in ways:
        policy.on_fill(way)
    policy.on_access(ways[0])  # 0 becomes MRU; 1 is now LRU
    assert policy.select_victim(ways) == 1


def test_lru_fill_counts_as_access():
    policy = LRUPolicy()
    ways = [FakeWay() for _ in range(2)]
    policy.on_fill(ways[0])
    policy.on_fill(ways[1])
    assert policy.select_victim(ways) == 0


def test_nru_victim_is_first_clear_bit():
    policy = NRUPolicy()
    ways = [FakeWay() for _ in range(4)]
    policy.on_access(ways[0])
    policy.on_access(ways[2])
    assert policy.select_victim(ways) == 1


def test_nru_resets_when_all_set():
    policy = NRUPolicy()
    ways = [FakeWay() for _ in range(3)]
    for way in ways:
        policy.on_access(way)
    victim = policy.select_victim(ways)
    assert victim == 0
    # After the reset, all bits were cleared.
    assert [w.stamp for w in ways] == [0, 0, 0]


def test_make_policy():
    assert make_policy("lru").name == "lru"
    assert make_policy("nru").name == "nru"
    with pytest.raises(ConfigError):
        make_policy("random")
