"""The JSONL time-series store and the offline HTML observatory.

The tsdb contract: O(1) appends, bounded retention, tolerance of a torn
final line (a crash mid-append must not poison history).  The dash
contract: one fully self-contained HTML file — every byte inline, no
network fetches of any kind — assembling BENCH trajectory, flamegraph,
profile deltas, sparklines, and validation verdicts.
"""

import json

import pytest

from repro.obs.dash import gather_dash_data, render_dash
from repro.obs.profiler import Profile
from repro.obs.tsdb import (
    TimeSeriesStore,
    bench_row,
    metrics_row,
    samples_row,
)


# ----------------------------------------------------------------------
# Time-series store
# ----------------------------------------------------------------------

def test_append_and_read_back_rows(tmp_path):
    store = TimeSeriesStore(tmp_path / "ts.jsonl")
    store.append("metrics", {"jobs": 1}, ts=100.0)
    store.append("bench", {"events_per_sec": 5000.0}, ts=200.0)
    assert len(store) == 2
    assert [r["kind"] for r in store.rows()] == ["metrics", "bench"]
    assert store.rows(kind="bench")[0]["data"]["events_per_sec"] == 5000.0
    # A second handle over the same file sees the same history.
    assert len(TimeSeriesStore(store.path)) == 2


def test_series_extracts_numeric_history(tmp_path):
    store = TimeSeriesStore(tmp_path / "ts.jsonl")
    for i in range(3):
        store.append("metrics", {"depth": float(i), "name": "x",
                                 "flag": True}, ts=float(i))
    assert store.series("metrics", "depth") == [(0.0, 0.0), (1.0, 1.0),
                                                (2.0, 2.0)]
    assert store.series("metrics", "name") == []   # non-numeric excluded
    assert store.series("metrics", "flag") == []   # bools excluded


def test_retention_bounds_row_count(tmp_path):
    store = TimeSeriesStore(tmp_path / "ts.jsonl", max_rows=5)
    for i in range(40):
        store.append("metrics", {"i": i}, ts=float(i))
    # Prune triggers at 25% overshoot, so the store stays near max_rows.
    assert len(store) <= 7
    kept = [r["data"]["i"] for r in store.rows()]
    assert kept == sorted(kept)      # newest rows survive, in order
    assert kept[-1] == 39


def test_age_based_prune_and_torn_final_line(tmp_path):
    store = TimeSeriesStore(tmp_path / "ts.jsonl", max_age_seconds=10.0)
    store.append("metrics", {"i": 0}, ts=0.0)
    store.append("metrics", {"i": 1}, ts=100.0)
    dropped = store.prune(now=105.0)
    assert dropped == 1
    assert [r["data"]["i"] for r in store.rows()] == [1]
    # A torn final line (crash mid-append) is skipped, not fatal.
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "metrics", "ts": 200.0, "da')
    assert [r["data"]["i"] for r in store.rows()] == [1]


def test_row_builders_flatten_registry_and_bench_shapes():
    snapshot = {
        "jobs_total": [{"labels": {"outcome": "ok"}, "value": 3.0},
                       {"labels": {"outcome": "bad"}, "value": 1.0}],
        "latency_seconds": [{"labels": {}, "sum": 2.5, "count": 4,
                             "buckets": {"1.0": 3, "+Inf": 4}}],
    }
    row = metrics_row(snapshot)
    assert row["jobs_total"] == 4.0
    assert row["latency_seconds_count"] == 4
    assert row["latency_seconds_sum"] == 2.5

    from repro.obs.metrics import Sample
    samples = [Sample("a_total", {}, 2.0), Sample("a_total", {"k": "v"}, 3.0),
               Sample("h_bucket", {"le": "1"}, 9.0)]
    flat = samples_row(samples)
    assert flat["a_total"] == 5.0
    assert "h_bucket" not in flat  # buckets excluded from sparklines

    record = {"run_id": "r", "events_per_sec": 100.0, "total_events": 10,
              "total_wall_seconds": 0.1, "git_sha": "abc", "scale": "smoke"}
    row = bench_row(record, n=4)
    assert row["n"] == 4 and row["events_per_sec"] == 100.0


# ----------------------------------------------------------------------
# The dash
# ----------------------------------------------------------------------

def _bench_record(events_per_sec, run_id="run"):
    return {"schema": 1, "run_id": run_id, "git_sha": "cafe" * 10,
            "scale": "smoke", "events_per_sec": events_per_sec,
            "total_events": 10000, "total_wall_seconds": 1.5,
            "created_unix": 1700000000,
            "experiments": {"smoke": {"wall_seconds": 1.5, "events": 10000,
                                      "events_per_sec": events_per_sec}}}


@pytest.fixture
def repo(tmp_path):
    """A fake repo root: two BENCH milestones, two committed profiles,
    verdicts, and a tsdb with some history."""
    (tmp_path / "BENCH_3.json").write_text(
        json.dumps(_bench_record(90000.0, "three")), encoding="utf-8")
    (tmp_path / "BENCH_4.json").write_text(
        json.dumps(_bench_record(130000.0, "four")), encoding="utf-8")

    profiles = tmp_path / "profiles"
    profiles.mkdir()
    old = Profile()
    old.add("mcf/baseline", ("exec.run", "engine.step"), 50)
    old.add("mcf/baseline", ("exec.run", "channel.issue"), 50)
    profiles.joinpath("BENCH_3.collapsed").write_text(
        old.collapsed(), encoding="utf-8")
    new = Profile()
    new.add("mcf/baseline", ("exec.run", "engine.step"), 80)
    new.add("mcf/baseline", ("exec.run", "channel.issue"), 20)
    profiles.joinpath("BENCH_4.collapsed").write_text(
        new.collapsed(), encoding="utf-8")

    (tmp_path / "VERDICTS.json").write_text(json.dumps({
        "schema": 1, "scale": "smoke",
        "experiments": {"fig06": {"title": "Fig. 6", "verdict": "pass",
                                  "claims": [{"status": "pass"}]}},
        "summary": {"claims": 1, "passed": 1, "failed": 0, "errors": 0,
                    "experiments": 1},
    }), encoding="utf-8")

    tsdb = TimeSeriesStore(tmp_path / "ts.jsonl")
    for i in range(3):
        tsdb.append("metrics", {"repro_queue_depth": float(i)}, ts=float(i))
    return tmp_path


def test_gather_defaults_to_committed_profiles(repo):
    data = gather_dash_data(repo, tsdb_path=repo / "ts.jsonl")
    assert [n for n, _ in data["bench"]] == [3, 4]
    assert data["profile_path"].name == "BENCH_4.collapsed"
    assert data["baseline_path"].name == "BENCH_3.collapsed"
    assert data["verdicts"]["summary"]["passed"] == 1
    assert len(data["tsdb"]) == 3


def test_dash_html_is_complete_and_self_contained(repo):
    data = gather_dash_data(repo, tsdb_path=repo / "ts.jsonl")
    page = render_dash(data)
    assert page.startswith("<!DOCTYPE html>")
    # Every section made it in.
    for needle in ("BENCH_3", "BENCH_4", "Throughput trajectory",
                   "Flamegraph", "Top profile deltas", "Metrics history",
                   "Validation verdicts", "repro_queue_depth",
                   "engine.step"):
        assert needle in page, needle
    # The BENCH_3 -> BENCH_4 delta tile shows the speedup direction.
    assert "▲" in page
    # Self-containment: nothing on the page causes a network fetch.
    assert "<script src" not in page
    assert "<link" not in page
    assert "@import" not in page
    assert "fetch(" not in page
    lowered = page.lower()
    for i in range(len(lowered)):
        if lowered.startswith("http://", i) or lowered.startswith(
                "https://", i):
            # Only the SVG xmlns identifier (not a fetch) may remain.
            assert "w3.org" in page[i:i + 40]


def test_dash_degrades_without_artifacts(tmp_path):
    data = gather_dash_data(tmp_path)
    page = render_dash(data)
    assert "no BENCH records" in page
    assert "no profile" in page


def test_dash_main_writes_file(repo, capsys):
    from repro.obs.dash import dash_main

    out = repo / "dash.html"
    rc = dash_main(["--repo", str(repo), "--out", str(out),
                    "--tsdb", str(repo / "ts.jsonl")])
    assert rc == 0
    assert out.is_file()
    assert "wrote" in capsys.readouterr().out
    assert "<svg" in out.read_text(encoding="utf-8")
