"""The unified ``repro`` CLI and the deprecated console-script shims."""

import pytest

from repro.cli import (
    analyze_shim,
    experiment_shim,
    main,
    validate_shim,
)


def test_help_lists_every_subcommand(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for command in ("experiment", "analyze", "validate", "serve",
                    "top", "metrics", "profile", "dash"):
        assert command in out
    assert "--log-level" in out


def test_no_arguments_prints_usage_and_succeeds(capsys):
    assert main([]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_version_flag(capsys):
    from repro import __version__
    assert main(["--version"]) == 0
    assert __version__ in capsys.readouterr().out


def test_unknown_command_is_an_error(capsys):
    assert main(["frobnicate"]) == 2
    captured = capsys.readouterr()
    assert "unknown command 'frobnicate'" in captured.err
    assert "usage: repro" in captured.err
    assert captured.out == ""


def test_experiment_subcommand_delegates(capsys):
    assert main(["experiment", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig06" in out


@pytest.mark.parametrize("subcommand", ["experiment", "analyze",
                                        "validate", "serve",
                                        "top", "metrics", "profile",
                                        "dash"])
def test_each_subcommand_wires_to_a_real_parser(subcommand, capsys):
    # argparse exits 0 on --help; reaching it proves the lazy import
    # resolved and the delegation passed arguments through.
    with pytest.raises(SystemExit) as excinfo:
        main([subcommand, "--help"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out


# ----------------------------------------------------------------------
# Global logging flags
# ----------------------------------------------------------------------

def test_global_log_flags_configure_and_strip(capsys):
    import logging

    try:
        assert main(["--log-level", "debug", "--log-json",
                     "experiment", "--list"]) == 0
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
        handlers = [h for h in logger.handlers
                    if getattr(h, "_repro_obs_handler", False)]
        assert len(handlers) == 1
        assert "fig06" in capsys.readouterr().out  # flags were stripped
    finally:
        logging.getLogger("repro").handlers.clear()


def test_log_flags_after_subcommand_belong_to_it(capsys):
    # Only *global* (pre-subcommand) flags are intercepted; a trailing
    # --log-level reaches the subcommand parser and errors there.
    with pytest.raises(SystemExit) as excinfo:
        main(["experiment", "--log-level", "debug", "--list"])
    assert excinfo.value.code == 2


def test_log_level_requires_a_value(capsys):
    assert main(["--log-level"]) == 2
    assert "needs a value" in capsys.readouterr().err


def test_bad_log_level_is_an_error(capsys):
    assert main(["--log-level=loud", "experiment", "--list"]) == 2
    assert "unknown log level" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------

def test_experiment_shim_warns_then_delegates(capsys):
    assert experiment_shim(["--list"]) == 0
    captured = capsys.readouterr()
    assert "'repro-experiment' is deprecated" in captured.err
    assert "repro experiment" in captured.err
    assert "fig06" in captured.out  # the real subcommand still ran


@pytest.mark.parametrize("shim, old", [
    (analyze_shim, "repro-analyze"),
    (validate_shim, "repro-validate"),
])
def test_other_shims_warn_then_delegate(shim, old, capsys):
    with pytest.raises(SystemExit) as excinfo:
        shim(["--help"])
    assert excinfo.value.code == 0
    captured = capsys.readouterr()
    assert f"'{old}' is deprecated" in captured.err
    assert captured.out
