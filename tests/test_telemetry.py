"""Telemetry: probe cadence, ring bounds, JSONL traces, manifests,
and — most importantly — that observing a run never changes it."""

import json
from dataclasses import replace

import pytest

from repro.engine.event_queue import Simulator
from repro.errors import ConfigError
from repro.experiments.common import SMOKE, run_mix, scaled_config
from repro.obs.telemetry import Series, Telemetry, TelemetryConfig
from repro.obs.trace import read_trace, safe_stem, trace_paths
from repro.workloads.mixes import rate_mix

#: SMOKE with a short trace so instrumented full-system runs stay fast.
TINY = replace(SMOKE, name="smoke", refs_per_core=3_000)


def make_busy_sim(ticks: int, step: int = 100) -> Simulator:
    """A simulator kept busy by a self-rescheduling ticker event."""
    sim = Simulator()
    state = {"left": ticks}

    def tick() -> None:
        state["left"] -= 1
        if state["left"] > 0:
            sim.schedule(step, tick)

    sim.schedule(step, tick)
    return sim


# ----------------------------------------------------------------------
# Probe framework
# ----------------------------------------------------------------------

def test_sampling_cadence_follows_probe_interval():
    sim = make_busy_sim(ticks=100, step=100)  # busy until cycle 10_000
    tel = Telemetry(sim, interval=500)
    tel.register("const", lambda: 7.0)
    tel.start()
    sim.run()
    cycles = tel.series("const").cycles()
    assert cycles, "sampler never fired"
    assert cycles[0] == 500
    assert all(b - a == 500 for a, b in zip(cycles, cycles[1:]))
    assert all(v == 7.0 for v in tel.series("const").values())
    # Self-terminating: the queue drained, so the run actually ended.
    assert sim.pending == 0


def test_sampler_stops_when_simulation_drains():
    sim = make_busy_sim(ticks=5, step=100)  # busy until cycle 500
    tel = Telemetry(sim, interval=200)
    tel.register("zero", lambda: 0.0)
    tel.start()
    sim.run()
    # Samples at 200 and 400 happen amid work; the one scheduled after
    # the last tick fires with an empty queue and does not reschedule.
    assert tel.samples_taken <= 4
    assert sim.pending == 0


def test_ring_buffer_bounds_series_memory():
    sim = make_busy_sim(ticks=400, step=100)  # busy until cycle 40_000
    tel = Telemetry(sim, interval=100, buffer_samples=8)
    tel.register("x", lambda: 1.0)
    tel.start()
    sim.run()
    series = tel.series("x")
    assert tel.samples_taken > 8
    assert len(series) == 8
    assert series.maxlen == 8
    # The ring keeps the *newest* samples.
    assert series.cycles()[-1] == max(series.cycles())
    assert series.last() == series.samples()[-1]


def test_duplicate_probe_names_rejected():
    tel = Telemetry(Simulator())
    tel.register("a", lambda: 0.0)
    with pytest.raises(ConfigError):
        tel.register("a", lambda: 1.0)


def test_decision_stride_keeps_every_nth():
    tel = Telemetry(Simulator(), event_sample=3)
    for i in range(10):
        tel.decision(now=i, line=i, technique="fwb", granted=True)
    assert tel.decisions_seen == 10
    assert tel.decisions_recorded == 4  # decisions 0, 3, 6, 9
    assert [d["cycle"] for d in tel.decisions] == [0, 3, 6, 9]


def test_telemetry_config_validates():
    with pytest.raises(ConfigError):
        TelemetryConfig(probe_interval=0)
    with pytest.raises(ConfigError):
        TelemetryConfig(event_sample=0)
    with pytest.raises(ConfigError):
        TelemetryConfig(buffer_samples=-1)


def test_series_repr_and_empty_last():
    series = Series("s", maxlen=4)
    assert series.last() is None
    assert "s" in repr(series)


# ----------------------------------------------------------------------
# Full-system traces and manifests
# ----------------------------------------------------------------------

def run_traced(tmp_path, policy="dap", interval=2_000):
    config = scaled_config(TINY, policy=policy)
    telemetry = TelemetryConfig(probe_interval=interval,
                                trace_dir=str(tmp_path))
    return run_mix(rate_mix("mcf"), config, TINY, telemetry=telemetry,
                   label=f"mcf/{policy}")


def test_jsonl_trace_round_trip(tmp_path):
    result = run_traced(tmp_path)
    trace_path, manifest_path = trace_paths(tmp_path, "mcf/dap")
    assert trace_path.is_file() and manifest_path.is_file()

    records = read_trace(trace_path)
    assert records[0]["t"] == "meta"
    assert records[0]["label"] == "mcf/dap"
    assert "dap.credits.fwb" in records[0]["probes"]

    samples = read_trace(trace_path, kind="sample")
    assert samples, "no probe samples in the trace"
    values = samples[0]["values"]
    # Credit-counter series and channel-utilization series both present.
    for key in ("dap.credits.fwb", "dap.credits.wb", "dap.credits.ifrm",
                "dap.credits.sfrm", "mm.busy_frac", "cache.busy_frac",
                "mm.gbps", "cache.row_hit_rate", "msc.outstanding_reads",
                "msc.read_latency_ewma"):
        assert key in values, f"missing probe {key}"
    # Sample cadence matches the configured interval.
    cycles = [s["cycle"] for s in samples]
    assert all(b - a == 2_000 for a, b in zip(cycles, cycles[1:]))

    decisions = read_trace(trace_path, kind="decision")
    assert decisions, "DAP made no recorded steering decisions"
    first = decisions[0]
    assert first["technique"] in {"fwb", "wb", "ifrm", "sfrm"}
    assert isinstance(first["granted"], bool)
    assert set(first["credits"]) == {"fwb", "wb", "ifrm", "sfrm"}

    # The sidecar manifest agrees with the embedded one.
    manifest = result.extras["manifest"]
    with open(manifest_path, encoding="utf-8") as handle:
        sidecar = json.load(handle)
    assert sidecar["cycles"] == manifest["cycles"]
    assert sidecar["policy"] == "dap"


def test_manifest_in_result_extras(tmp_path):
    result = run_traced(tmp_path)
    manifest = result.manifest
    assert manifest is result.extras["manifest"]
    assert manifest["schema"] == 1
    assert manifest["label"] == "mcf/dap"
    assert manifest["scale"] == "smoke"
    assert manifest["policy"] == "dap"
    assert manifest["policy_describe"].startswith("dap(")
    assert manifest["config"]["policy"] == "dap"
    assert manifest["cycles"] == result.cycles > 0
    assert manifest["events"] > 0
    assert manifest["wall_seconds"] > 0
    assert manifest["events_per_sec"] > 0
    tel = manifest["telemetry"]
    assert tel["samples"] > 0 and tel["probes"] > 0
    assert tel["probe_interval"] == 2_000


def test_untraced_run_still_carries_manifest():
    result = run_mix(rate_mix("mcf"), scaled_config(TINY, policy="baseline"),
                     TINY)
    manifest = result.manifest
    assert manifest["policy"] == "baseline"
    assert manifest["policy_describe"] == "baseline"
    assert manifest["telemetry"] is None
    assert result.extras["sfrm_issued"] >= 0


def test_telemetry_does_not_change_results(tmp_path):
    config = scaled_config(TINY, policy="dap")
    plain = run_mix(rate_mix("mcf"), config, TINY)
    traced = run_traced(tmp_path, interval=1_000)
    assert traced.cycles == plain.cycles
    assert traced.mm_cas == plain.mm_cas
    assert traced.cache_cas == plain.cache_cas
    assert traced.ipc == plain.ipc


def test_safe_stem_sanitizes_labels():
    assert safe_stem("mcf/dap") == "mcf_dap"
    assert safe_stem("fig06:mix 2") == "fig06_mix_2"
    assert safe_stem("///") == "run"
