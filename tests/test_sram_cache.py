"""Tests for the generic set-associative SRAM cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sram_cache import SRAMCache
from repro.errors import ConfigError


def make_cache(size=8 * 64, assoc=2):
    return SRAMCache("test", size_bytes=size, assoc=assoc)


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.lookup(10)
    cache.fill(10)
    assert cache.lookup(10)
    assert cache.hits == 1 and cache.misses == 1


def test_geometry_validation():
    with pytest.raises(ConfigError):
        SRAMCache("bad", size_bytes=100, assoc=3)
    with pytest.raises(ConfigError):
        SRAMCache("bad", size_bytes=0, assoc=1)


def test_eviction_on_conflict():
    cache = make_cache(size=4 * 64, assoc=2)  # 2 sets, 2 ways
    cache.fill(0)          # set 0
    cache.fill(2)          # set 0
    evicted = cache.fill(4)  # set 0 again -> evicts LRU (line 0)
    assert evicted is not None and evicted.line == 0
    assert not cache.probe(0)
    assert cache.probe(2) and cache.probe(4)


def test_dirty_propagates_through_eviction():
    cache = make_cache(size=2 * 64, assoc=1)
    cache.fill(0, dirty=True)
    evicted = cache.fill(2)
    assert evicted.line == 0 and evicted.dirty


def test_write_lookup_sets_dirty():
    cache = make_cache()
    cache.fill(7)
    cache.lookup(7, is_write=True)
    assert cache.is_dirty(7) is True


def test_invalidate_returns_dirty_state():
    cache = make_cache()
    cache.fill(3, dirty=True)
    assert cache.invalidate(3) is True
    assert cache.invalidate(3) is None
    assert not cache.probe(3)


def test_refill_merges_dirty():
    cache = make_cache()
    cache.fill(5, dirty=True)
    cache.fill(5, dirty=False)
    assert cache.is_dirty(5) is True


def test_probe_has_no_side_effects():
    cache = make_cache()
    cache.fill(1)
    hits, misses = cache.hits, cache.misses
    cache.probe(1)
    cache.probe(999)
    assert (cache.hits, cache.misses) == (hits, misses)


def test_clean_clears_dirty():
    cache = make_cache()
    cache.fill(9, dirty=True)
    assert cache.clean(9)
    assert cache.is_dirty(9) is False
    assert not cache.clean(12345)


def test_lru_order_respected():
    cache = make_cache(size=4 * 64, assoc=2)
    cache.fill(0)
    cache.fill(2)
    cache.lookup(0)  # 0 is MRU
    evicted = cache.fill(4)
    assert evicted.line == 2


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

ops = st.lists(
    st.tuples(st.sampled_from(["fill", "read", "write", "invalidate"]),
              st.integers(min_value=0, max_value=63)),
    max_size=200,
)


@given(ops)
@settings(max_examples=50, deadline=None)
def test_occupancy_never_exceeds_capacity(operations):
    cache = SRAMCache("prop", size_bytes=4 * 64, assoc=2)
    for op, line in operations:
        if op == "fill":
            cache.fill(line)
        elif op == "read":
            cache.lookup(line)
        elif op == "write":
            cache.lookup(line, is_write=True)
        else:
            cache.invalidate(line)
        assert cache.resident_lines() <= 4
    assert cache.accesses == cache.hits + cache.misses


@given(ops)
@settings(max_examples=50, deadline=None)
def test_fill_then_probe_always_hits(operations):
    cache = SRAMCache("prop", size_bytes=16 * 64, assoc=4)
    for op, line in operations:
        if op == "fill":
            cache.fill(line)
            assert cache.probe(line)
        elif op == "invalidate":
            cache.invalidate(line)
            assert not cache.probe(line)
        else:
            cache.lookup(line, is_write=(op == "write"))


@given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=500))
@settings(max_examples=30, deadline=None)
def test_dirty_only_if_resident(lines):
    cache = SRAMCache("prop", size_bytes=8 * 64, assoc=2)
    for line in lines:
        cache.fill(line, dirty=(line % 2 == 0))
        dirty = cache.is_dirty(line)
        assert dirty is not None  # just filled, must be resident
        if line % 2 == 0:
            assert dirty
