"""Registry coverage: every registered policy is buildable, described,
exercised by an experiment cell, and judged by at least one claim.

This is the guard against half-registered policies: a name added to
``POLICY_NAMES`` without a constructor arm, a manifest description, an
experiment cell, or claim coverage fails here rather than deep inside a
sweep.
"""

import pytest

from repro.experiments.common import SMOKE
from repro.experiments.registry import iter_specs
from repro.hierarchy.system import POLICY_NAMES, SystemConfig, _make_policy
from repro.policies.base import SteeringPolicy

#: Policies reachable from the CLI but deliberately absent from every
#: registered spec (``dap-ta`` is the thread-aware CLI variant; the
#: registered experiments use plain ``dap``).
CELL_EXEMPT = {"dap-ta"}


def _config_for(name: str) -> SystemConfig:
    # BEAR is an Alloy-cache fill policy; everything else runs sectored.
    kind = "alloy" if name == "bear" else "sectored"
    return SystemConfig(policy=name, msc_kind=kind)


def _cells_by_policy() -> dict:
    """Map policy name -> set of spec names with at least one cell."""
    covered: dict[str, set] = {}
    for spec in iter_specs():
        workloads = (spec.default_workloads
                     if getattr(spec, "workload_aware", False) else None)
        for cell in spec.cells(SMOKE, workloads):
            config = getattr(cell, "config", None)
            policy = getattr(config, "policy", None)
            if policy:
                covered.setdefault(policy, set()).add(spec.name)
    return covered


def _specs_with_claims() -> set:
    return {spec.name for spec in iter_specs()
            if spec.claims and list(spec.claims())}


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_policy_constructs_with_defaults(name):
    policy = _make_policy(_config_for(name), b_ms=0.4, b_mm=0.15)
    assert isinstance(policy, SteeringPolicy)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_policy_describes_itself(name):
    policy = _make_policy(_config_for(name), b_ms=0.4, b_mm=0.15)
    assert isinstance(policy.describe(), str) and policy.describe()
    assert isinstance(policy.describe_params(), dict)
    assert isinstance(policy.result_extras(), dict)


@pytest.mark.parametrize("name", ("baseline", "dap"))
def test_golden_covered_policies_keep_extras_empty(name):
    # The determinism golden fingerprints every RunResult.extras key of
    # the baseline and DAP runs; these policies must not grow extras.
    policy = _make_policy(_config_for(name), b_ms=0.4, b_mm=0.15)
    assert policy.result_extras() == {}


def test_every_policy_has_an_experiment_cell():
    covered = _cells_by_policy()
    missing = [name for name in POLICY_NAMES
               if name not in CELL_EXEMPT and name not in covered]
    assert not missing, (
        f"policies registered but exercised by no experiment cell: {missing}")


def test_every_exercised_policy_is_claim_covered():
    # A policy is claim-covered when at least one spec whose cells run
    # it registers claims — the claims judge tables built from those
    # cells, so the policy's behavior gates validation.
    covered = _cells_by_policy()
    with_claims = _specs_with_claims()
    unjudged = [name for name, specs in sorted(covered.items())
                if not (specs & with_claims)]
    assert not unjudged, (
        f"policies with cells but no claim coverage: {unjudged}")


def test_new_baseline_policies_are_named_in_claims():
    # The related-work frontier policies must be referenced by name in
    # claim text, not just implicitly via table columns.
    text = " ".join(
        f"{claim.id} {claim.claim}"
        for spec in iter_specs() if spec.claims
        for claim in spec.claims())
    for name in ("banshee", "tuntu", "cbp"):
        assert name in text.lower(), f"no claim names policy {name!r}"
