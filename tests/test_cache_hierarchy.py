"""Tests for the SRAM hierarchy, prefetcher, and MSHR merging."""

from repro.engine import Simulator
from repro.hierarchy.cache_hierarchy import CacheHierarchy, SramLevels, StridePrefetcher
from repro.hierarchy.msc_base import MscController
from repro.mem.request import AccessKind


class FakeMsc(MscController):
    """Records reads/writes; completes reads after a fixed delay."""

    def __init__(self, sim, latency=100):
        self.sim = sim
        self.latency = latency
        self.reads = []
        self.writes = []
        from repro.policies.base import SteeringPolicy
        self.policy = SteeringPolicy()

    def read(self, line, core_id, callback, kind=AccessKind.DEMAND_READ):
        self.reads.append((line, core_id, kind))
        self.sim.schedule(self.latency, lambda: callback(self.sim.now))

    def write(self, line, core_id):
        self.writes.append((line, core_id))


def make_hierarchy(sim, cores=2, prefetch=False):
    msc = FakeMsc(sim)
    levels = SramLevels(l1_bytes=4 * 64, l1_assoc=2, l2_bytes=16 * 64,
                        l2_assoc=2, l3_bytes=64 * 64, l3_assoc=4)
    return CacheHierarchy(sim, cores, msc, levels=levels,
                          enable_prefetch=prefetch), msc


def test_l1_hit_after_fill():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    done = []
    assert h.load(0, 10, on_fill=lambda t: done.append(t)) is None  # L3 miss
    sim.run()
    assert done
    assert h.load(0, 10) == h.levels.l1_latency


def test_l3_miss_reaches_msc():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    h.load(0, 42, on_fill=lambda t: None)
    assert msc.reads[0][0] == 42
    assert h.l3_demand_misses[0] == 1


def test_mshr_merging_single_msc_read():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    done = []
    h.load(0, 7, on_fill=lambda t: done.append("a"))
    h.load(1, 7, on_fill=lambda t: done.append("b"))
    assert len(msc.reads) == 1  # merged
    sim.run()
    assert sorted(done) == ["a", "b"]
    # Both cores' private caches got the line.
    assert h.load(0, 7) == h.levels.l1_latency
    assert h.load(1, 7) == h.levels.l1_latency


def test_second_core_misses_privately_hits_l3():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    h.load(0, 5, on_fill=lambda t: None)
    sim.run()
    # Core 1 misses its L1/L2 but hits the shared L3.
    assert h.load(1, 5) == h.levels.l3_latency


def test_store_marks_dirty_and_writeback_cascades():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    h.store(0, 1, on_fill=lambda t: None)
    sim.run()
    # Evict line 1 from L1 by filling conflicting lines (assoc 2, 2 sets).
    for line in (3, 5, 7, 9, 11, 13):
        h.load(0, line, on_fill=lambda t: None)
        sim.run()
    # The dirty line must have merged into L2/L3, not vanished.
    dirty_somewhere = (
        h.l1[0].is_dirty(1) or h.l2[0].is_dirty(1) or h.l3.is_dirty(1)
    )
    assert dirty_somewhere


def test_l3_dirty_eviction_writes_to_msc():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    levels = h.levels
    # Dirty a line, then stream enough lines through one L3 set to evict it.
    h.store(0, 0, on_fill=lambda t: None)
    sim.run()
    sets = h.l3.num_sets
    for i in range(1, 8):
        h.load(0, i * sets, on_fill=lambda t: None)  # same L3 set as line 0
        sim.run()
    assert any(line == 0 for line, _ in msc.writes)


def test_mpki_accounting():
    sim = Simulator()
    h, msc = make_hierarchy(sim)
    for line in range(10):
        h.load(0, line * 1000, on_fill=lambda t: None)
        sim.run()
    assert h.l3_demand_misses[0] == 10
    assert h.l3_mpki(0, instructions=1000) == 10.0
    assert h.l3_mpki(0, instructions=0) == 0.0


def test_prefetcher_detects_streams():
    pf = StridePrefetcher(degree=2)
    targets = []
    for line in range(100, 110):
        targets.extend(pf.observe(line))
    assert targets  # stream detected
    assert targets[-1] > 109  # prefetches run ahead


def test_prefetcher_ignores_random():
    pf = StridePrefetcher(degree=2)
    import random

    rng = random.Random(1)
    targets = []
    for _ in range(50):
        targets.extend(pf.observe(rng.randrange(10_000_000)))
    assert not targets


def test_prefetch_issues_reads_with_prefetch_kind():
    sim = Simulator()
    h, msc = make_hierarchy(sim, prefetch=True)
    for i in range(20):
        h.load(0, 1000 + i, on_fill=lambda t: None)
        sim.run()
    kinds = {kind for _, _, kind in msc.reads}
    assert AccessKind.PREFETCH_READ in kinds


def test_prefetch_inflight_is_bounded():
    sim = Simulator()
    h, msc = make_hierarchy(sim, prefetch=True)
    h.max_prefetch_inflight = 2
    # Stream without letting fills complete: prefetches must stay <= 2.
    for i in range(30):
        h.load(0, 5000 + i * 64, on_fill=lambda t: None)  # distinct L2 sets
    pf_reads = [r for r in msc.reads if r[2] is AccessKind.PREFETCH_READ]
    assert len(pf_reads) <= 2
