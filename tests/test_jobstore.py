"""The persistent SQLite job queue: lifecycle, retries, crash recovery."""

import time

import pytest

from repro.api import ExperimentRequest
from repro.service.jobstore import JobNotFound, JobStore


def _request(**overrides):
    fields = dict(experiment="fig06", scale="smoke", workloads=("mcf",))
    fields.update(overrides)
    return ExperimentRequest(**fields)


def _result(executed=2, cache_hits=0, events=1000, elapsed=0.5):
    return {
        "experiment": "Fig. 6",
        "headers": ["workload", "norm_ws_dap"],
        "rows": [["mcf", 1.05]],
        "notes": "",
        "stats": {"total": executed + cache_hits, "executed": executed,
                  "cache_hits": cache_hits, "replayed_failures": 0,
                  "failed": 0, "elapsed": elapsed, "events": events,
                  "events_per_sec": events / elapsed},
    }


@pytest.fixture
def store(tmp_path):
    # Tiny backoff so retry tests don't sleep for real.
    return JobStore(tmp_path / "jobs.sqlite3", backoff_base=0.05)


# ----------------------------------------------------------------------
# Submission and claiming
# ----------------------------------------------------------------------

def test_submit_enqueues_with_fingerprint_and_event(store):
    job = store.submit(_request())
    assert job.state == "queued"
    assert job.attempts == 0
    assert job.fingerprint == _request().fingerprint()
    events = store.events_since(job.id)
    assert [e for _, e in events] == [{"t": "state", "state": "queued"}]


def test_submit_rejects_invalid_requests(store):
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        store.submit(ExperimentRequest(experiment="nope"))
    assert store.list_jobs() == []


def test_claim_is_exclusive_and_oldest_first(store):
    first = store.submit(_request())
    store.submit(_request(workloads=("milc",)))

    claimed = store.claim("w1")
    assert claimed.id == first.id  # oldest queued job wins
    assert claimed.state == "running"
    assert claimed.attempts == 1
    assert claimed.worker == "w1"

    second = store.claim("w2")
    assert second.id != first.id
    assert store.claim("w3") is None  # queue drained


def test_complete_stores_result_and_dedupe_counters(store):
    job = store.submit(_request())
    store.claim("w1")
    store.complete(job.id, _result(executed=0, cache_hits=2))

    done = store.get(job.id)
    assert done.state == "succeeded"
    assert done.terminal
    assert done.executed_cells == 0
    assert done.cached_cells == 2
    assert store.result(job.id)["rows"] == [["mcf", 1.05]]
    last = store.events_since(job.id)[-1][1]
    assert last["state"] == "succeeded" and last["cached"] == 2


# ----------------------------------------------------------------------
# Failure, retry, backoff
# ----------------------------------------------------------------------

def test_fail_requeues_with_backoff_until_attempts_exhausted(store):
    job = store.submit(_request(max_attempts=2))
    store.claim("w1")

    assert store.fail(job.id, "worker exploded") == "queued"
    assert store.claim("w1") is None  # backoff: not claimable yet
    time.sleep(0.06)
    retried = store.claim("w1")
    assert retried is not None and retried.attempts == 2

    assert store.fail(job.id, "exploded again") == "failed"
    final = store.get(job.id)
    assert final.state == "failed"
    assert "exploded again" in final.error


def test_fail_not_retryable_fails_immediately(store):
    job = store.submit(_request(max_attempts=5))
    store.claim("w1")
    assert store.fail(job.id, "fatal", retryable=False) == "failed"


def test_release_requeues_without_attempt_penalty(store):
    job = store.submit(_request())
    store.claim("w1")
    store.release(job.id)

    released = store.get(job.id)
    assert released.state == "queued"
    assert released.attempts == 0  # drain costs no attempt
    assert store.claim("w2").id == job.id  # immediately claimable


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------

def test_cancel_queued_job_is_terminal(store):
    job = store.submit(_request())
    cancelled = store.cancel(job.id)
    assert cancelled.state == "cancelled"
    assert cancelled.terminal
    assert store.claim("w1") is None


def test_cancel_running_job_sets_flag_for_worker(store):
    job = store.submit(_request())
    store.claim("w1")
    assert not store.cancel_requested(job.id)

    after = store.cancel(job.id)
    assert after.state == "running"  # worker stops it between cells
    assert store.cancel_requested(job.id)

    store.mark_cancelled(job.id)
    assert store.get(job.id).state == "cancelled"


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------

def test_recover_orphans_requeues_jobs_with_attempts_left(store):
    job = store.submit(_request(max_attempts=2))
    store.claim("w1")
    # Simulate a crashed service: a fresh store opens the same database.
    reopened = JobStore(store.path, backoff_base=0.05)
    assert reopened.recover_orphans() == [job.id]
    recovered = reopened.get(job.id)
    assert recovered.state == "queued"
    assert reopened.claim("w2") is not None  # runnable right away


def test_recover_orphans_fails_jobs_out_of_attempts(store):
    job = store.submit(_request(max_attempts=1))
    store.claim("w1")
    reopened = JobStore(store.path)
    assert reopened.recover_orphans() == []
    final = reopened.get(job.id)
    assert final.state == "failed"
    assert "orphaned" in final.error


# ----------------------------------------------------------------------
# Events, reads, stats
# ----------------------------------------------------------------------

def test_events_are_sequenced_and_resumable(store):
    job = store.submit(_request())
    store.add_event(job.id, {"t": "cell", "label": "mcf/baseline"})
    store.add_event(job.id, {"t": "cell", "label": "mcf/dap"})

    events = store.events_since(job.id)
    assert [seq for seq, _ in events] == [1, 2, 3]
    # Resume after seq 2: only the newest event comes back.
    tail = store.events_since(job.id, after_seq=2)
    assert [e["label"] for _, e in tail] == ["mcf/dap"]


def test_set_progress_updates_cell_counters(store):
    job = store.submit(_request())
    store.set_progress(job.id, 1, 2)
    assert (store.get(job.id).done_cells,
            store.get(job.id).total_cells) == (1, 2)


def test_unknown_job_raises(store):
    with pytest.raises(JobNotFound):
        store.get("missing")
    with pytest.raises(JobNotFound):
        store.result("missing")


def test_list_jobs_filters_by_state(store):
    done = store.submit(_request())
    store.claim("w1")
    store.complete(done.id, _result())
    queued = store.submit(_request(workloads=("milc",)))

    assert {j.id for j in store.list_jobs()} == {done.id, queued.id}
    assert [j.id for j in store.list_jobs(state="queued")] == [queued.id]
    assert store.list_jobs(state="running") == []


def test_stats_aggregates_dedupe_and_throughput(store):
    cold = store.submit(_request())
    store.claim("w1")
    store.complete(cold.id, _result(executed=2, cache_hits=0, events=1000,
                                    elapsed=0.5))
    warm = store.submit(_request())
    store.claim("w1")
    store.complete(warm.id, _result(executed=0, cache_hits=2, events=0,
                                    elapsed=0.01))
    store.submit(_request(workloads=("milc",)))

    stats = store.stats()
    assert stats["jobs"]["succeeded"] == 2
    assert stats["queue_depth"] == 1
    assert stats["cells_executed"] == 2
    assert stats["cells_cached"] == 2
    assert stats["cache_hit_ratio"] == 0.5
    assert stats["events_simulated"] == 1000
    assert stats["events_per_sec"] > 0


# ----------------------------------------------------------------------
# Worker heartbeat and live orphan recovery
# ----------------------------------------------------------------------

def test_claim_sets_heartbeat_and_progress_refreshes_it(store):
    job = store.submit(_request())
    claimed = store.claim("w1")
    assert claimed.heartbeat is not None
    assert abs(claimed.heartbeat - time.time()) < 5.0

    time.sleep(0.02)
    store.set_progress(job.id, 1, 4)
    assert store.get(job.id).heartbeat > claimed.heartbeat

    time.sleep(0.02)
    before = store.get(job.id).heartbeat
    store.beat(job.id)
    assert store.get(job.id).heartbeat > before


def test_heartbeat_none_until_claimed_and_visible_in_stats(store):
    job = store.submit(_request())
    assert store.get(job.id).heartbeat is None
    assert store.stats()["stalest_heartbeat_seconds"] is None

    store.claim("w1")
    stalest = store.stats()["stalest_heartbeat_seconds"]
    assert stalest is not None and stalest < 5.0


def test_live_recovery_only_touches_stale_heartbeats(store):
    fresh = store.submit(_request(max_attempts=3))
    store.claim("w1")
    # A freshly-beating job survives a live janitor pass...
    assert store.recover_orphans(stale_seconds=60.0) == []
    assert store.get(fresh.id).state == "running"
    # ...but a silent one is requeued (stale_seconds < 0 makes the
    # horizon lie in the future, so any heartbeat counts as stale).
    assert store.recover_orphans(stale_seconds=-1.0) == [fresh.id]
    assert store.get(fresh.id).state == "queued"
    assert store.last_recovery["live"] is True


def test_startup_recovery_still_requeues_everything(store):
    job = store.submit(_request(max_attempts=2))
    store.claim("w1")
    # No stale_seconds: startup semantics, heartbeat age irrelevant.
    assert store.recover_orphans() == [job.id]


# ----------------------------------------------------------------------
# Event-log retention
# ----------------------------------------------------------------------

def test_prune_events_drops_only_old_terminal_jobs(store):
    from repro.obs.metrics import REGISTRY

    done = store.submit(_request())
    store.claim("w1")
    store.add_event(done.id, {"t": "cell", "label": "mcf/baseline"})
    store.complete(done.id, _result())
    live = store.submit(_request(workloads=("milc",)))
    store.claim("w1")
    store.add_event(live.id, {"t": "cell", "label": "milc/baseline"})

    # Young terminal job: inside the TTL, nothing pruned.
    assert store.prune_events(ttl_seconds=3600) == 0
    before = REGISTRY.value("repro_jobstore_events_pruned_total")
    # ttl < 0 puts the horizon in the future: the finished job's rows
    # go, the running job's rows stay.
    pruned = store.prune_events(ttl_seconds=-1)
    assert pruned > 0
    assert store.events_since(done.id) == []
    assert len(store.events_since(live.id)) > 0
    after = REGISTRY.value("repro_jobstore_events_pruned_total")
    assert after - before == pruned
    # The job row itself survives pruning — only the event log goes.
    assert store.get(done.id).state == "succeeded"
