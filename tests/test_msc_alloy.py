"""Integration tests for the Alloy cache controller."""

from repro.cache.alloy import AlloyCacheArray
from repro.cache.dbc import DirtyBitCache
from repro.engine import Simulator
from repro.hierarchy.msc_alloy import AlloyHitPredictor, AlloyMscController
from repro.mem.configs import ddr4_2400, hbm_102
from repro.mem.device import MemoryDevice
from repro.mem.request import AccessKind
from repro.policies.bear import BearFillPolicy
from repro.policies.dap import DapAlloyPolicy


def make_controller(policy=None, capacity=1 << 20, dbc=True):
    sim = Simulator()
    cache_dev = MemoryDevice(sim, hbm_102())
    mm_dev = MemoryDevice(sim, ddr4_2400())
    array = AlloyCacheArray("alloy", capacity)
    ctrl = AlloyMscController(
        sim, cache_dev, mm_dev, array, policy=policy,
        dbc=DirtyBitCache(entries=1024) if dbc else None,
    )
    return sim, ctrl


def run_read(ctrl, sim, line):
    done = []
    ctrl.read(line, core_id=0, callback=lambda t: done.append(t))
    sim.run()
    assert done
    return done[0]


def test_read_hit_fetches_tad():
    sim, ctrl = make_controller()
    ctrl.warm_line(5)
    run_read(ctrl, sim, 5)
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.TAD_READ) == 1
    assert ctrl.served_hits == 1


def test_read_miss_fills_with_tad_write():
    sim, ctrl = make_controller()
    run_read(ctrl, sim, 7)
    kinds = ctrl.cache_dev.cas_by_kind()
    assert kinds.get(AccessKind.TAD_READ) == 1     # probe discovered miss
    assert kinds.get(AccessKind.TAD_WRITE) == 1    # fill
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1
    assert ctrl.array.probe(7)


def test_predicted_miss_overlaps_mm_read():
    sim, ctrl = make_controller()
    predictor = ctrl.predictor
    # Train the predictor to predict misses for this region.
    for _ in range(4):
        predictor.update(0, 7, was_hit=False)
    assert not predictor.predict_hit(0, 7)
    finish_parallel = run_read(ctrl, sim, 7)

    sim2, ctrl2 = make_controller()
    for _ in range(4):
        ctrl2.predictor.update(0, 7, was_hit=True)  # mispredict: hit
    finish_serial = run_read(ctrl2, sim2, 7)
    assert finish_parallel < finish_serial  # early miss handling pays off


def test_write_hit_skips_tad_fetch():
    sim, ctrl = make_controller()
    ctrl.warm_line(9)
    ctrl.write(9, core_id=0)
    sim.run()
    kinds = ctrl.cache_dev.cas_by_kind()
    assert kinds.get(AccessKind.TAD_WRITE) == 1
    assert AccessKind.TAD_READ not in kinds  # presence bit avoided it
    assert ctrl.array.is_dirty(9)


def test_write_miss_allocates_and_evicts_dirty_victim():
    sim, ctrl = make_controller(capacity=4 * 64)  # 4 sets
    ctrl.warm_line(0, dirty=True)
    ctrl.write(4, core_id=0)  # conflicts with line 0
    sim.run()
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WRITEBACK, 0) >= 1
    assert ctrl.array.probe(4)
    assert not ctrl.array.probe(0)


def test_dap_ifrm_uses_dbc_clean_state():
    policy = DapAlloyPolicy(b_ms=0.4, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(11)  # clean
    run_read(ctrl, sim, 11)  # first touch installs the DBC group
    tads_before = ctrl.cache_dev.cas_by_kind().get(AccessKind.TAD_READ, 0)
    policy.engine._ifrm.load(5 * float(policy.engine._cost))
    run_read(ctrl, sim, 11)  # DBC hit + clean -> IFRM
    assert ctrl.stats.ifrm_applied == 1
    # Served by MM, no additional TAD fetch.
    assert ctrl.cache_dev.cas_by_kind().get(AccessKind.TAD_READ, 0) == tads_before
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.DEMAND_READ) == 1


def test_dap_ifrm_on_absent_line_doubles_as_fill_bypass():
    policy = DapAlloyPolicy(b_ms=0.4, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    # Warm the DBC group by reading a line in the same group first.
    run_read(ctrl, sim, 14)
    policy.engine._ifrm.load(5 * float(policy.engine._cost))
    fwb_before = ctrl.stats.fwb_applied
    run_read(ctrl, sim, 13)  # absent and set clean -> IFRM + fill bypass
    assert ctrl.stats.ifrm_applied == 1
    assert ctrl.stats.fwb_applied == fwb_before + 1
    assert not ctrl.array.probe(13)


def test_dap_write_through_cleans_block():
    policy = DapAlloyPolicy(b_ms=0.4, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(15)
    policy.engine._wt.load(5)
    ctrl.write(15, core_id=0)
    sim.run()
    assert ctrl.stats.write_throughs == 1
    assert not ctrl.array.is_dirty(15)
    assert ctrl.mm_dev.cas_by_kind().get(AccessKind.WT_WRITE) == 1


def test_bear_fill_bypass_leaders():
    policy = BearFillPolicy(leader_modulus=4)
    sim, ctrl = make_controller(policy=policy, capacity=(1 << 20))
    # Line in bypass-leader group (set % 4 == 1) gets its fill dropped.
    run_read(ctrl, sim, 1)
    assert not ctrl.array.probe(1)
    # Line in fill-leader group (set % 4 == 0) keeps its fill.
    run_read(ctrl, sim, 4)
    assert ctrl.array.probe(4)


def test_predictor_learns():
    predictor = AlloyHitPredictor(entries=64)
    for _ in range(4):
        predictor.update(0, 100, was_hit=False)
    assert not predictor.predict_hit(0, 100)
    for _ in range(4):
        predictor.update(0, 100, was_hit=True)
    assert predictor.predict_hit(0, 100)
    assert predictor.correct + predictor.wrong == 8


def test_served_hit_rate_counts_ifrm_as_miss():
    policy = DapAlloyPolicy(b_ms=0.4, b_mm=0.15, window=10**9)
    sim, ctrl = make_controller(policy=policy)
    ctrl.warm_line(11)
    run_read(ctrl, sim, 11)  # warms the DBC group; a served hit
    policy.engine._ifrm.load(5 * float(policy.engine._cost))
    run_read(ctrl, sim, 11)   # IFRM -> counted as served miss
    assert ctrl.served_hits == 1
    assert ctrl.served_misses == 1
