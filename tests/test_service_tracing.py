"""End-to-end trace correlation and observation-only guarantees.

The acceptance criteria for the observability layer: one traceparent
submitted at the HTTP edge must be recoverable at every layer (response
header, job row, SSE frames, run manifest), the registry's job/cell
counters must move, and none of it may perturb simulation results —
a traced service job returns rows bit-identical to a direct run.
"""

import json
import time
from pathlib import Path

import pytest

from repro import api
from repro.obs.metrics import REGISTRY
from repro.obs.spans import make_traceparent, trace_id_of
from repro.service.app import ServiceApp
from repro.service.jobstore import JobStore
from repro.service.testing import TestClient, parse_sse
from repro.service.worker import WorkerPool

REQUEST_BODY = {"experiment": "fig06", "scale": "smoke",
                "workloads": ["mcf"], "trace": True}


def _poll_terminal(client, job_id, timeout=240.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = client.get(f"/jobs/{job_id}").json()
        if job["terminal"]:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s")


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3", backoff_base=0.02)


def test_one_traceparent_at_all_four_layers(tmp_path, store):
    """Header -> job row -> SSE frames -> run manifest, one trace id."""
    trace_root = tmp_path / "traces"
    pool = WorkerPool(store, workers=1,
                      cache=api.default_cache(str(tmp_path / "cold-cache")),
                      trace_root=str(trace_root), poll_seconds=0.02)
    client = TestClient(ServiceApp(store, pool=pool))
    mine = make_traceparent()

    submitted = client.post("/jobs", json_body=REQUEST_BODY,
                            headers={"traceparent": mine})
    assert submitted.status == 202
    # Layer 1: the HTTP response echoes the adopted traceparent.
    assert submitted.headers["traceparent"] == mine
    job = submitted.json()
    # Layer 2: persisted on the job row, visible on every status read.
    assert job["traceparent"] == mine
    assert client.get(f"/jobs/{job['id']}").json()["traceparent"] == mine

    pool.start()
    try:
        done = _poll_terminal(client, job["id"])
    finally:
        pool.stop(timeout=240)
    assert done["state"] == "succeeded"
    assert done["executed_cells"] == 2  # cold cache: real simulation

    # Layer 3: every SSE data frame carries the submission's id, and
    # the worker's per-cell spans joined the stream under it too.
    events = parse_sse(client.get(f"/jobs/{job['id']}/events").text)
    data_frames = [e for e in events if isinstance(e.get("data"), dict)]
    assert data_frames
    # Every frame correlates to the submitted trace; span frames carry
    # their own child span id under it, the rest carry it verbatim.
    assert all(trace_id_of(e["data"].get("traceparent"))
               == trace_id_of(mine) for e in data_frames)
    assert all(e["data"]["traceparent"] == mine
               for e in data_frames if e["data"].get("t") == "cell")
    spans = [e["data"] for e in events if e["data"].get("t") == "span"]
    assert len(spans) == 2
    assert all(s["trace_id"] == trace_id_of(mine) for s in spans)
    assert all(s["name"].startswith("cell/") for s in spans)
    assert all(s["wall_seconds"] > 0 for s in spans)

    # Layer 4: each executed cell's run manifest records the same id.
    manifests = sorted((trace_root / job["id"]).glob("*.manifest.json"))
    assert len(manifests) == 2
    for path in manifests:
        manifest = json.loads(Path(path).read_text())
        assert manifest["traceparent"] == mine


def test_traced_job_rows_bit_identical_to_direct_run(tmp_path, store):
    """Tracing + metrics are observation-only: a fully instrumented
    service job computes exactly what an uninstrumented direct call
    does (both cold, independent caches)."""
    pool = WorkerPool(store, workers=1,
                      cache=api.default_cache(str(tmp_path / "svc-cache")),
                      trace_root=str(tmp_path / "traces"),
                      poll_seconds=0.02)
    client = TestClient(ServiceApp(store, pool=pool))
    job = client.post("/jobs", json_body=REQUEST_BODY).json()
    pool.start()
    try:
        done = _poll_terminal(client, job["id"])
    finally:
        pool.stop(timeout=240)
    assert done["state"] == "succeeded"
    assert done["executed_cells"] == 2

    direct = api.run_experiment(
        api.ExperimentRequest(experiment="fig06", scale="smoke",
                              workloads=("mcf",)),
        cache=str(tmp_path / "direct-cache"))
    service_result = client.get(f"/jobs/{job['id']}/result").json()["result"]
    assert service_result["rows"] == [list(r) for r in direct.rows]
    assert service_result["headers"] == list(direct.headers)


def test_direct_runs_never_get_a_manifest_traceparent(tmp_path,
                                                      shared_cache_dir):
    """No ambient trace context -> no traceparent key: the manifest
    shape of direct runs (and determinism goldens) is unchanged."""
    trace_dir = tmp_path / "direct-traces"
    api.run_experiment(
        api.ExperimentRequest(experiment="fig06", scale="smoke",
                              workloads=("mcf",), trace=True),
        cache=shared_cache_dir, trace_dir=str(trace_dir))
    manifests = sorted(trace_dir.glob("*.manifest.json"))
    for path in manifests:
        assert "traceparent" not in json.loads(Path(path).read_text())


def test_dedupe_and_outcome_counters_move(store, shared_cache_dir):
    """A fully cache-served submission bumps repro_jobs_deduped_total
    (the counter CI asserts on) and the succeeded-outcome counter."""
    request = api.ExperimentRequest(experiment="fig06", scale="smoke",
                                    workloads=("mcf",))
    api.run_experiment(request, cache=shared_cache_dir)  # warm the cache

    deduped_before = REGISTRY.value("repro_jobs_deduped_total")
    succeeded_before = REGISTRY.value("repro_jobs_total",
                                      {"outcome": "succeeded"})
    submitted_before = REGISTRY.value("repro_jobs_submitted_total")

    pool = WorkerPool(store, workers=1,
                      cache=api.default_cache(shared_cache_dir),
                      poll_seconds=0.02)
    client = TestClient(ServiceApp(store, pool=pool))
    job = client.post("/jobs", json_body={"experiment": "fig06",
                                          "scale": "smoke",
                                          "workloads": ["mcf"]}).json()
    pool.start()
    try:
        done = _poll_terminal(client, job["id"])
    finally:
        pool.stop(timeout=240)
    assert done["state"] == "succeeded"
    assert done["executed_cells"] == 0  # pure cache hit

    assert REGISTRY.value("repro_jobs_deduped_total") == deduped_before + 1
    assert REGISTRY.value("repro_jobs_total",
                          {"outcome": "succeeded"}) == succeeded_before + 1
    assert REGISTRY.value("repro_jobs_submitted_total") == \
        submitted_before + 1
    assert REGISTRY.value("repro_worker_cells_total",
                          {"status": "cached"}) >= 2
    # The store-side claim histogram observed this claim.
    assert REGISTRY.value("repro_claim_latency_seconds") >= 1
