"""Tests for the trace-driven core model."""

import pytest

from repro.engine import Simulator
from repro.hierarchy.cache_hierarchy import CacheHierarchy, SramLevels
from repro.hierarchy.cpu_core import TraceCore
from repro.mem.request import AccessKind
from repro.policies.base import SteeringPolicy


class FakeMsc:
    def __init__(self, sim, latency=200):
        self.sim = sim
        self.latency = latency
        self.reads = 0
        self.policy = SteeringPolicy()

    def read(self, line, core_id, callback, kind=AccessKind.DEMAND_READ):
        self.reads += 1
        self.sim.schedule(self.latency, lambda: callback(self.sim.now))

    def write(self, line, core_id):
        pass


def build(trace, latency=200, **core_kwargs):
    sim = Simulator()
    msc = FakeMsc(sim, latency=latency)
    levels = SramLevels(l1_bytes=64 * 64, l1_assoc=2, l2_bytes=256 * 64,
                        l2_assoc=4, l3_bytes=1024 * 64, l3_assoc=4)
    hierarchy = CacheHierarchy(sim, 1, msc, levels=levels, enable_prefetch=False)
    core = TraceCore(sim, 0, trace, hierarchy, **core_kwargs)
    return sim, core, msc


def test_compute_bound_ipc_approaches_width():
    # 100 memory ops, 39 compute instructions between each, all L1 hits
    # after first touch to one line.
    trace = [(39, False, 0)] * 100
    sim, core, msc = build(trace)
    core.start()
    sim.run()
    assert core.done
    # 4000 instructions at width 4 -> >= 1000 cycles; near-ideal IPC.
    assert core.ipc == pytest.approx(4.0, rel=0.2)


def test_all_instructions_counted():
    trace = [(9, False, i) for i in range(50)]
    sim, core, msc = build(trace)
    core.start()
    sim.run()
    assert core.instr_count == 50 * 10
    assert core.loads == 50


def test_miss_latency_bounds_ipc():
    # Dependent-ish serial misses: distinct lines, no compute gap, tiny ROB.
    trace = [(0, False, i * 4096) for i in range(50)]
    sim, core, msc = build(trace, latency=500, rob_entries=1, mshrs=1)
    core.start()
    sim.run()
    # Each miss serializes: runtime >= 50 * 500 cycles (minus slack).
    assert core.finish_cycle >= 50 * 500 * 0.8


def test_mlp_overlaps_misses():
    trace = [(0, False, i * 4096) for i in range(50)]
    sim_serial, core_serial, _ = build(trace, latency=500, rob_entries=1, mshrs=1)
    core_serial.start()
    sim_serial.run()
    sim_par, core_par, _ = build(trace, latency=500, rob_entries=224, mshrs=16)
    core_par.start()
    sim_par.run()
    # 16 MSHRs overlap misses: much faster than the serial core.
    assert core_par.finish_cycle < core_serial.finish_cycle / 4


def test_mshr_limit_enforced():
    trace = [(0, False, i * 4096) for i in range(40)]
    sim, core, msc = build(trace, latency=10_000, mshrs=4)
    core.start()
    # Run a little: only 4 misses may be outstanding.
    sim.run(until=5_000)
    assert msc.reads <= 4


def test_rob_window_blocks_runahead():
    # A miss at the head with rob=8 allows at most ~8 further instructions.
    trace = [(0, False, 0)] + [(0, False, 1 << 20)] + \
            [(3, False, 2)] * 30  # the 1<<20 load misses
    sim, core, msc = build(trace, latency=100_000, rob_entries=8, mshrs=8)
    core.start()
    sim.run(until=50_000)
    # Core cannot have dispatched past the window while the miss is live.
    assert core.instr_count <= 2 + 8 + 4


def test_stores_do_not_block_retirement():
    trace = [(0, True, i * 4096) for i in range(20)] + [(0, False, 0)] * 10
    sim, core, msc = build(trace, latency=300)
    core.start()
    sim.run()
    assert core.done
    assert core.stores == 20


def test_ipc_zero_before_finish():
    trace = [(0, False, 0)]
    sim, core, msc = build(trace)
    assert core.ipc == 0.0
    core.start()
    sim.run()
    assert core.ipc > 0


def test_deterministic_across_runs():
    trace = [(2, bool(i % 3 == 0), (i * 37) % 5000) for i in range(300)]
    finishes = []
    for _ in range(2):
        sim, core, msc = build(list(trace))
        core.start()
        sim.run()
        finishes.append(core.finish_cycle)
    assert finishes[0] == finishes[1]
