"""The sampling profiler: capture, collapsed-stack format, determinism.

The profiler's contract has two halves.  Mechanically: a background
thread samples tracked threads' stacks into the collapsed format with
per-cell attribution, the format round-trips through ``Profile.parse``,
and the engine writes per-cell profile sidecars next to cache entries.
Behaviourally — the half CI really cares about: profiling is
*observation only*.  A profiled run's simulated results are bit-identical
to an unprofiled one (the determinism golden holds with the profiler
running), and nothing about profiling enters cell cache keys.
"""

import tempfile
import threading
import time
from pathlib import Path

from repro.api import MixCell, run_cells
from repro.experiments.cellcache import CellCache
from repro.experiments.common import get_scale, scaled_config
from repro.obs.golden import capture_golden, diff_goldens, load_golden
from repro.obs.profiler import (
    Profile,
    SamplingProfiler,
    merge_collapsed,
    top_symbols,
)
from repro.workloads.mixes import rate_mix

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism_golden.json"


def _busy_wait(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


def _cells(workload="mcf", policies=("baseline", "dap")):
    scale = get_scale("smoke")
    return [
        MixCell(f"{workload}/{policy}", rate_mix(workload),
                scaled_config(scale, policy=policy), scale)
        for policy in policies
    ]


def _result_fingerprint(results):
    return {label: (r.cycles, r.mean_ipc, r.mean_mpki, r.avg_read_latency)
            for label, r in sorted(results.items())}


# ----------------------------------------------------------------------
# Sampler mechanics
# ----------------------------------------------------------------------

def test_sampler_captures_tracked_thread_with_cell_attribution():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_wait, args=(stop,), daemon=True)
    worker.start()
    profiler = SamplingProfiler(hz=250)
    profiler.track(cell="unit/busy", ident=worker.ident)
    profiler.start()
    time.sleep(0.25)
    profile = profiler.stop()
    stop.set()
    worker.join()

    assert profile.total_samples > 0
    assert profile.cells() == ["unit/busy"]
    symbols = profile.by_symbol()
    assert any("_busy_wait" in s for s in symbols)
    # Meta captures the capture parameters for later tooling.
    assert profile.meta["hz"] == 250
    assert profile.meta["samples"] == profile.total_samples


def test_untracked_threads_are_never_sampled():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_wait, args=(stop,), daemon=True)
    worker.start()
    # Started without track(): the busy worker is visible to
    # sys._current_frames() but must not be sampled.
    profiler = SamplingProfiler(hz=250)
    profiler.start()
    time.sleep(0.1)
    profile = profiler.stop()
    stop.set()
    worker.join()
    assert profile.total_samples == 0


def test_collapsed_round_trips_and_is_deterministic():
    profile = Profile()
    profile.add("cellA", ("mod.outer", "mod.inner"), count=3)
    profile.add("cellA", ("mod.outer",), count=2)
    profile.add("cellB", ("other.leaf",), count=1)
    profile.meta["hz"] = 101

    text = profile.collapsed()
    assert text == Profile.parse(text).collapsed()  # byte-stable
    parsed = Profile.parse(text)
    assert parsed.samples == profile.samples
    assert parsed.meta["hz"] == 101
    assert parsed.cells() == ["cellA", "cellB"]

    by_symbol = parsed.by_symbol()
    assert by_symbol["mod.outer"]["self"] == 2
    assert by_symbol["mod.outer"]["total"] == 5
    assert by_symbol["mod.inner"]["self"] == 3


def test_merge_collapsed_sums_counts_across_captures():
    a = Profile()
    a.add("cell", ("m.f",), count=2)
    b = Profile()
    b.add("cell", ("m.f",), count=3)
    b.add("cell", ("m.g",), count=1)
    merged = Profile.parse(merge_collapsed([a.collapsed(), b.collapsed()]))
    assert merged.samples[("cell", ("m.f",))] == 5
    assert merged.total_samples == 6
    top = top_symbols(merged, 1)
    assert top[0][0] == "m.f"


def test_merge_carries_backend_attribution():
    """Per-cell profiles are stamped with the producing backend; the
    merged profile keeps it while agreeing, degrades to 'mixed'."""
    merged = Profile()
    merged.merge(Profile(meta={"backend": "numpy", "hz": 101}))
    merged.merge(Profile(meta={"backend": "numpy", "hz": 101}))
    assert merged.meta["backend"] == "numpy"
    assert "# backend: numpy" in merged.collapsed()
    merged.merge(Profile(meta={"backend": "python"}))
    assert merged.meta["backend"] == "mixed"


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------

def test_engine_profiles_cells_and_writes_sidecars(tmp_path):
    cache = CellCache(tmp_path / "cache")
    cells = _cells()
    results, stats = run_cells(cells, cache=cache, profile_hz=101)
    assert len(results) == 2
    assert set(stats.stack_profiles) == {"mcf/baseline", "mcf/dap"}
    for label, text in stats.stack_profiles.items():
        profile = Profile.parse(text)
        assert profile.total_samples > 0
        assert profile.cells() == [label]
        assert profile.meta["backend"] == "python"
    # Each executed cell left a profile sidecar next to its cache entry.
    from repro.experiments.cellcache import cell_key

    for cell in cells:
        sidecar = cache.get_profile(cell_key(cell.key_parts()))
        assert sidecar is not None
        assert Profile.parse(sidecar).cells() == [cell.label]


def test_cache_hits_contribute_no_samples(tmp_path):
    cache = CellCache(tmp_path / "cache")
    run_cells(_cells(), cache=cache, profile_hz=101)
    results, stats = run_cells(_cells(), cache=cache, profile_hz=101)
    assert stats.cache_hits == 2
    assert stats.stack_profiles == {}
    assert len(results) == 2


# ----------------------------------------------------------------------
# The determinism contract
# ----------------------------------------------------------------------

def test_profiled_run_is_bit_identical_to_unprofiled(tmp_path):
    plain_results, plain_stats = run_cells(
        _cells(), cache=CellCache(tmp_path / "plain"), profile_hz=0)
    prof_results, prof_stats = run_cells(
        _cells(), cache=CellCache(tmp_path / "profiled"), profile_hz=101)
    assert (_result_fingerprint(plain_results)
            == _result_fingerprint(prof_results))
    assert plain_stats.stack_profiles == {}
    assert prof_stats.stack_profiles != {}
    # Profiling must not enter the cache key: an unprofiled re-run
    # against the profiled run's cache is a pure cache hit.
    _, rerun_stats = run_cells(
        _cells(), cache=CellCache(tmp_path / "profiled"), profile_hz=0)
    assert rerun_stats.cache_hits == 2
    assert rerun_stats.executed == 0


def test_golden_holds_while_profiler_is_sampling():
    # The strongest determinism statement we can make: a fresh golden
    # capture taken *while the sampler is interrupting this very thread
    # hundreds of times a second* still matches the committed golden
    # byte for byte.
    profiler = SamplingProfiler(hz=331)
    profiler.track(cell="golden/capture")
    profiler.start()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            fresh = capture_golden(["mcf"], ["baseline", "dap"],
                                   trace_dir=tmp)
    finally:
        profile = profiler.stop()
    committed = load_golden(GOLDEN_PATH)
    assert diff_goldens(committed, fresh) == []
    assert profile.total_samples > 0  # the sampler really was running
