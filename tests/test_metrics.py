"""The dependency-free metrics registry and its exposition format.

Covers registration semantics, render → parse round-trips, the strict
parser/linter CI runs against the live scrape, and the concurrency
guarantee: a scrape taken while worker threads hammer the registry is
an atomic snapshot (no torn text, histograms internally consistent).
"""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    lint_exposition,
    parse_exposition,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Registration and update semantics
# ----------------------------------------------------------------------

def test_counter_gauge_histogram_basics(registry):
    c = registry.counter("jobs_total", "jobs")
    c.inc()
    c.inc(2.5)
    assert registry.value("jobs_total") == 3.5

    g = registry.gauge("depth", "queue depth")
    g.set(7)
    g.inc()
    g.dec(3)
    assert registry.value("depth") == 5.0

    h = registry.histogram("latency_seconds", "latency",
                           buckets=(0.1, 1.0, 10.0))
    h.observe(0.05)
    h.observe(5.0)
    solo = h.labels()
    assert solo.count == 2
    assert solo.sum == pytest.approx(5.05)
    assert solo.cumulative() == [1, 1, 2]


def test_counters_are_monotonic(registry):
    counter = registry.counter("c_total", "c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_labelled_family_children_are_independent(registry):
    family = registry.counter("http_total", "reqs", ("method", "status"))
    family.labels(method="GET", status="200").inc()
    family.labels("GET", "404").inc(2)
    assert registry.value("http_total",
                          {"method": "GET", "status": "200"}) == 1
    assert registry.value("http_total",
                          {"method": "GET", "status": "404"}) == 2
    # Unknown child reads as zero, never raises.
    assert registry.value("http_total",
                          {"method": "PUT", "status": "200"}) == 0.0


def test_labelled_family_rejects_bare_updates(registry):
    family = registry.counter("x_total", "x", ("k",))
    with pytest.raises(ValueError):
        family.inc()
    with pytest.raises(ValueError):
        family.labels(k="a", extra="b")
    with pytest.raises(ValueError):
        family.labels("a", "b")


def test_reregistration_is_idempotent_but_typed(registry):
    first = registry.counter("same_total", "help")
    again = registry.counter("same_total", "help")
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("same_total", "now a gauge")
    with pytest.raises(ValueError):
        registry.counter("same_total", "other labels", ("k",))


def test_bad_names_and_buckets_rejected(registry):
    with pytest.raises(ValueError):
        registry.counter("bad-name", "x")
    with pytest.raises(ValueError):
        registry.counter("ok_total", "x", ("bad-label",))
    with pytest.raises(ValueError):
        registry.histogram("h", "x", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("h", "x", buckets=(2.0, 1.0))


# ----------------------------------------------------------------------
# Exposition: render, parse, lint
# ----------------------------------------------------------------------

def test_render_parses_back_to_same_values(registry):
    registry.counter("jobs_total", "jobs", ("outcome",)) \
        .labels(outcome="succeeded").inc(3)
    registry.gauge("depth", "queue").set(2)
    registry.histogram("wall_seconds", "per-cell wall",
                       buckets=(0.5, 5.0)).observe(1.25)
    text = registry.render()

    assert "# HELP jobs_total jobs" in text
    assert "# TYPE wall_seconds histogram" in text
    samples = {(s.name, tuple(sorted(s.labels.items()))): s.value
               for s in parse_exposition(text)}
    assert samples[("jobs_total", (("outcome", "succeeded"),))] == 3
    assert samples[("depth", ())] == 2
    assert samples[("wall_seconds_bucket", (("le", "0.5"),))] == 0
    assert samples[("wall_seconds_bucket", (("le", "5"),))] == 1
    assert samples[("wall_seconds_bucket", (("le", "+Inf"),))] == 1
    assert samples[("wall_seconds_sum", ())] == 1.25
    assert samples[("wall_seconds_count", ())] == 1
    assert lint_exposition(text) == []


def test_label_values_are_escaped_round_trip(registry):
    hostile = 'quote " backslash \\ newline \n end'
    registry.counter("esc_total", "escapes", ("v",)).labels(v=hostile).inc()
    samples = parse_exposition(registry.render())
    assert [s for s in samples if s.labels.get("v") == hostile]


def test_empty_registry_renders_valid_exposition(registry):
    assert lint_exposition(registry.render()) == []


def test_scrape_hooks_refresh_before_render(registry):
    gauge = registry.gauge("depth", "queue")
    registry.on_scrape(lambda: gauge.set(42))
    samples = parse_exposition(registry.render())
    assert [s.value for s in samples if s.name == "depth"] == [42]


@pytest.mark.parametrize("text, problem", [
    ("what even is this line", "unparsable"),
    ('x_total{bad name="1"} 2', "bad label"),
    ("x_total notanumber", "bad value"),
    ('x_total{a="1",a="2"} 3', "duplicate label"),
    ("# TYPE x_total counter\n# TYPE x_total counter\nx_total 1",
     "duplicate TYPE"),
    ("x_total 1\n# TYPE x_total counter", "after its samples"),
    ("# TYPE h histogram\n"
     'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_sum 1\nh_count 3',
     "decrease"),
    ("# TYPE h histogram\n"
     'h_bucket{le="1"} 1\nh_sum 1\nh_count 1', "missing +Inf"),
    ("# TYPE h histogram\n"
     'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_sum 1\nh_count 3',
     "!= _count"),
])
def test_lint_rejects_malformed_exposition(text, problem):
    problems = lint_exposition(text)
    assert problems and problem in problems[0]


def test_parse_accepts_special_values():
    samples = parse_exposition("a 1e3\nb +Inf\nc -Inf\nd NaN\ne -4.5")
    by_name = {s.name: s.value for s in samples}
    assert by_name["a"] == 1000.0
    assert by_name["b"] == math.inf
    assert by_name["c"] == -math.inf
    assert math.isnan(by_name["d"])
    assert by_name["e"] == -4.5


def test_snapshot_shape(registry):
    registry.counter("jobs_total", "jobs", ("outcome",)) \
        .labels(outcome="failed").inc()
    registry.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["jobs_total"] == [
        {"labels": {"outcome": "failed"}, "value": 1.0}]
    [hist] = snap["h_seconds"]
    assert hist["count"] == 1
    assert hist["buckets"] == {"1": 1}


def test_histogram_quantile_interpolates():
    # 100 observations uniform in (0, 1]: p50 ~ 0.5, p95 ~ 0.95.
    buckets = {"0.25": 25, "0.5": 50, "0.75": 75, "1": 100, "+Inf": 100}
    assert histogram_quantile(buckets, 100, 0.5) == pytest.approx(0.5)
    assert histogram_quantile(buckets, 100, 0.95) == pytest.approx(0.95)
    assert histogram_quantile(buckets, 0, 0.5) is None
    # Mass in the +Inf bucket clamps to the last finite bound.
    assert histogram_quantile({"1": 0, "+Inf": 10}, 10, 0.5) == 1.0


def test_default_buckets_are_ascending():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ----------------------------------------------------------------------
# Histogram bucket/label edge cases (round-tripped through the parser)
# ----------------------------------------------------------------------

def test_boundary_observations_land_in_their_le_bucket(registry):
    # Prometheus buckets are `le` — less-than-OR-EQUAL: an observation
    # exactly on a bound belongs to that bucket, not the next one.
    h = registry.histogram("b_seconds", "bounds", buckets=(1.0, 2.0))
    h.observe(1.0)
    h.observe(2.0)
    samples = {(s.name, s.labels.get("le")): s.value
               for s in parse_exposition(registry.render())}
    assert samples[("b_seconds_bucket", "1")] == 1
    assert samples[("b_seconds_bucket", "2")] == 2
    assert samples[("b_seconds_bucket", "+Inf")] == 2
    assert samples[("b_seconds_count", None)] == 2


def test_labelled_histogram_children_round_trip_independently(registry):
    fam = registry.histogram("lh_seconds", "labelled", ("route",),
                             buckets=(0.5,))
    fam.labels(route="/jobs").observe(0.1)
    fam.labels(route="/jobs").observe(9.0)
    fam.labels(route="/stats").observe(0.2)
    text = registry.render()
    assert lint_exposition(text) == []

    samples = {(s.name, s.labels.get("route"), s.labels.get("le")): s.value
               for s in parse_exposition(text)}
    assert samples[("lh_seconds_bucket", "/jobs", "0.5")] == 1
    assert samples[("lh_seconds_bucket", "/jobs", "+Inf")] == 2
    assert samples[("lh_seconds_count", "/jobs", None)] == 2
    assert samples[("lh_seconds_sum", "/jobs", None)] == pytest.approx(9.1)
    assert samples[("lh_seconds_bucket", "/stats", "+Inf")] == 1
    # The per-child cumulative series each pass the linter's
    # monotonicity and +Inf==_count checks independently.
    assert samples[("lh_seconds_count", "/stats", None)] == 1


def test_histogram_with_observation_beyond_last_finite_bucket(registry):
    h = registry.histogram("o_seconds", "overflow", buckets=(0.1,))
    h.observe(1e6)
    samples = {(s.name, s.labels.get("le")): s.value
               for s in parse_exposition(registry.render())}
    assert samples[("o_seconds_bucket", "0.1")] == 0
    assert samples[("o_seconds_bucket", "+Inf")] == 1
    assert samples[("o_seconds_sum", None)] == pytest.approx(1e6)


def test_histogram_bucket_bounds_render_canonically(registry):
    # Integral bounds render without a trailing .0 so the exposition is
    # stable across Python float formatting; the parser reads them back.
    registry.histogram("c_seconds", "canon",
                       buckets=(0.025, 1.0, 10.0)).observe(0.5)
    text = registry.render()
    les = [s.labels["le"] for s in parse_exposition(text)
           if s.name == "c_seconds_bucket"]
    assert les == ["0.025", "1", "10", "+Inf"]
    assert lint_exposition(text) == []


# ----------------------------------------------------------------------
# Concurrency: scrapes are atomic snapshots
# ----------------------------------------------------------------------

def test_concurrent_updates_never_tear_a_scrape(registry):
    """Writer threads hammer counters + a histogram while the main
    thread scrapes continuously: every scrape must parse cleanly (the
    parser enforces histogram bucket/count consistency), and the final
    totals must equal everything the writers claim they wrote."""
    counter = registry.counter("ops_total", "ops", ("worker",))
    hist = registry.histogram("op_seconds", "op wall",
                              buckets=(0.001, 0.01, 0.1, 1.0))
    per_thread = 400
    threads = 4
    start = threading.Barrier(threads + 1)

    def writer(idx: int) -> None:
        child = counter.labels(worker=str(idx))
        start.wait()
        for i in range(per_thread):
            child.inc()
            hist.observe((i % 7) / 5.0)

    workers = [threading.Thread(target=writer, args=(i,))
               for i in range(threads)]
    for t in workers:
        t.start()
    start.wait()

    scrapes = 0
    while any(t.is_alive() for t in workers):
        text = registry.render()
        assert lint_exposition(text) == [], "torn scrape mid-hammer"
        # Within one scrape the histogram is self-consistent even
        # though observes are racing it.
        samples = parse_exposition(text)
        inf = [s.value for s in samples
               if s.name == "op_seconds_bucket"
               and s.labels.get("le") == "+Inf"]
        count = [s.value for s in samples if s.name == "op_seconds_count"]
        assert inf == count
        scrapes += 1
    for t in workers:
        t.join()

    assert scrapes > 0
    total = sum(registry.value("ops_total", {"worker": str(i)})
                for i in range(threads))
    assert total == threads * per_thread
    assert registry.value("op_seconds") == threads * per_thread
